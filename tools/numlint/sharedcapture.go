package main

import (
	"go/ast"
	"go/token"
	"go/types"

	"batlife/tools/numlint/internal/flow"
)

// sharedcaptureAnalyzer covers the concurrency surface the parallel
// solver grew in PRs 3–4 (Sweep workers, engine singleflight, obs
// histograms) with two path-sensitive checks:
//
//  1. shared capture: a `go func(){...}()` literal that mutates a
//     variable captured from the enclosing function — whole-variable
//     assignment, field write, map write, or a slice-element write
//     whose index is itself shared — must hold a sync lock that
//     dominates the write. Slice writes indexed by a literal-local or
//     per-iteration loop variable are the sharded-worker idiom and are
//     not flagged.
//
//  2. lock balance: on every path from a mu.Lock()/RLock() to a
//     return, a matching Unlock()/RUnlock() — inline or deferred —
//     must appear; a path that can exit with the lock held deadlocks
//     the next caller.
//
// Reads of captured loop variables are deliberately not flagged: with
// go1.22 per-iteration loop-variable semantics (this module's go
// directive) each goroutine observes its own copy.
var sharedcaptureAnalyzer = &Analyzer{
	Name: "sharedcapture",
	Doc:  "flag unsynchronised shared-state mutation in goroutine literals and unbalanced lock paths",
	Run:  runSharedcapture,
}

func runSharedcapture(pass *Pass) {
	for _, f := range pass.Files {
		loopVars := collectLoopVars(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockBalance(pass, fd.Name.Name, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.GoStmt:
					if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
						checkGoroutineCaptures(pass, lit, loopVars)
					}
				case *ast.FuncLit:
					checkLockBalance(pass, "function literal", s.Body)
				}
				return true
			})
		}
	}
}

// --- lock tracking -------------------------------------------------------

// lockSet maps a lock key — the printed receiver expression, with "/R"
// appended for read locks — to "held".
type lockSet map[string]bool

func cloneLocks(s lockSet) lockSet {
	out := make(lockSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// lockCall classifies a call as a lock operation: key and acquire, or
// key and release.
func lockCall(call *ast.CallExpr) (key string, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", false, false
	}
	recv := types.ExprString(sel.X)
	switch sel.Sel.Name {
	case "Lock":
		return recv, true, true
	case "RLock":
		return recv + "/R", true, true
	case "Unlock":
		return recv, false, true
	case "RUnlock":
		return recv + "/R", false, true
	}
	return "", false, false
}

// lockStep applies one statement's lock operations to the set. Nested
// function literals are separate frames (a deferred closure's Unlock is
// handled via deferredUnlocks, not here).
func lockStep(s lockSet, n ast.Node) lockSet {
	out := s
	cloned := false
	flow.Inspect(n, func(nd ast.Node) bool {
		switch e := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			key, acquire, ok := lockCall(e)
			if !ok {
				return true
			}
			if !cloned {
				out = cloneLocks(out)
				cloned = true
			}
			if acquire {
				out[key] = true
			} else {
				delete(out, key)
			}
		}
		return true
	})
	return out
}

// deferredUnlocks collects the lock keys released by the graph's defer
// statements, directly (defer mu.Unlock()) or inside a deferred
// closure.
func deferredUnlocks(g *flow.Graph) lockSet {
	out := lockSet{}
	add := func(call *ast.CallExpr) {
		if key, acquire, ok := lockCall(call); ok && !acquire {
			out[key] = true
		}
	}
	for _, d := range g.Defers {
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					add(call)
				}
				return true
			})
			continue
		}
		add(d.Call)
	}
	return out
}

// solveLocks runs the lock dataflow over g. must selects the meet:
// intersection (lock provably held) for write protection, union (lock
// possibly held) for leak detection.
func solveLocks(g *flow.Graph, must bool) *flow.Solution[lockSet] {
	problem := &flow.Forward[lockSet]{
		Entry: lockSet{},
		Meet: func(a, b lockSet) lockSet {
			out := lockSet{}
			for k := range a {
				if !must || b[k] {
					out[k] = true
				}
			}
			if !must {
				for k := range b {
					out[k] = true
				}
			}
			return out
		},
		Equal: func(a, b lockSet) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *flow.Block, in lockSet) lockSet {
			out := in
			for _, n := range b.Nodes {
				out = lockStep(out, n)
			}
			return out
		},
	}
	return problem.Solve(g)
}

// replayLocks returns the lock state immediately before node index idx
// of block b.
func replayLocks(sol *flow.Solution[lockSet], b *flow.Block, idx int) (lockSet, bool) {
	in, ok := sol.In(b)
	if !ok {
		return nil, false
	}
	out := in
	for i := 0; i < idx && i < len(b.Nodes); i++ {
		out = lockStep(out, b.Nodes[i])
	}
	return out, true
}

// checkLockBalance reports returns reachable with a lock still held and
// not discharged by a deferred unlock.
func checkLockBalance(pass *Pass, name string, body *ast.BlockStmt) {
	g := flow.New(body)
	deferred := deferredUnlocks(g)
	sol := solveLocks(g, false)
	for _, site := range g.Returns {
		state, reachable := replayLocks(sol, site.Block, indexOf(site.Block, site.Stmt))
		if !reachable {
			continue
		}
		for key := range state {
			if deferred[key] {
				continue
			}
			pass.Reportf(site.Stmt.Pos(),
				"%s can return with %s still locked on some path (no Unlock or defer before this return)",
				name, lockName(key))
		}
	}
	// Fall-off-the-end exit: any predecessor edge into Exit that is not
	// a return or terminator still runs the function epilogue.
	for _, e := range g.Exit.Preds {
		if isReturnBlockEdge(g, e) {
			continue
		}
		state, reachable := replayLocks(sol, e.From, len(e.From.Nodes))
		if !reachable {
			continue
		}
		for key := range state {
			if deferred[key] {
				continue
			}
			pos := body.Rbrace
			pass.Reportf(pos,
				"%s can fall off the end with %s still locked on some path",
				name, lockName(key))
		}
	}
}

func indexOf(b *flow.Block, n ast.Node) int {
	for i, node := range b.Nodes {
		if node == n {
			return i
		}
	}
	return len(b.Nodes)
}

// isReturnBlockEdge reports whether an Exit edge comes from a return
// statement or a terminating call (panic, os.Exit — where the lock dies
// with the goroutine anyway) rather than falling off the end.
func isReturnBlockEdge(g *flow.Graph, e *flow.Edge) bool {
	for _, site := range g.Returns {
		if site.Block == e.From {
			return true
		}
	}
	for _, b := range g.Panics {
		if b == e.From {
			return true
		}
	}
	return false
}

func lockName(key string) string {
	if len(key) > 2 && key[len(key)-2:] == "/R" {
		return key[:len(key)-2] + " (read lock)"
	}
	return key
}

// --- goroutine captures --------------------------------------------------

// collectLoopVars gathers the per-iteration loop variables of a file:
// for-init definitions and range key/value variables. Under go1.22
// semantics each iteration gets a fresh instance, so goroutines indexing
// a shared slice by such a variable write disjoint elements.
func collectLoopVars(pass *Pass, f *ast.File) map[types.Object]bool {
	out := map[types.Object]bool{}
	addDef := func(e ast.Expr) {
		if e == nil {
			return
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					addDef(lhs)
				}
			}
		case *ast.RangeStmt:
			addDef(s.Key)
			addDef(s.Value)
		}
		return true
	})
	return out
}

// checkGoroutineCaptures flags unsynchronised writes to captured state
// inside one `go func(){...}()` literal.
func checkGoroutineCaptures(pass *Pass, lit *ast.FuncLit, loopVars map[types.Object]bool) {
	captured := func(id *ast.Ident) *types.Var {
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return nil
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return nil // declared inside the literal (params included)
		}
		return obj
	}
	g := flow.New(lit.Body)
	sol := solveLocks(g, true)
	for _, b := range g.Blocks {
		for idx, node := range b.Nodes {
			locks, reachable := replayLocks(sol, b, idx)
			if !reachable {
				continue
			}
			lockHeld := len(locks) > 0
			flow.Inspect(node, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.AssignStmt:
					for _, lhs := range s.Lhs {
						checkCapturedWrite(pass, lit, lhs, s.Tok, captured, loopVars, lockHeld)
					}
				case *ast.IncDecStmt:
					checkCapturedWrite(pass, lit, s.X, token.ASSIGN, captured, loopVars, lockHeld)
				}
				return true
			})
		}
	}
}

func checkCapturedWrite(pass *Pass, lit *ast.FuncLit, lhs ast.Expr, tok token.Token,
	captured func(*ast.Ident) *types.Var, loopVars map[types.Object]bool, lockHeld bool) {
	if tok == token.DEFINE || lockHeld {
		return
	}
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := captured(l); obj != nil {
			pass.Reportf(l.Pos(),
				"goroutine assigns captured variable %s without holding a lock (shared-state race)",
				obj.Name())
		}
	case *ast.SelectorExpr:
		if root, ok := rootIdent(l.X); ok {
			if obj := captured(root); obj != nil {
				pass.Reportf(l.Pos(),
					"goroutine writes field %s of captured %s without holding a lock",
					l.Sel.Name, obj.Name())
			}
		}
	case *ast.StarExpr:
		if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
			if obj := captured(id); obj != nil {
				pass.Reportf(l.Pos(),
					"goroutine writes through captured pointer %s without holding a lock",
					obj.Name())
			}
		}
	case *ast.IndexExpr:
		id, ok := ast.Unparen(l.X).(*ast.Ident)
		if !ok {
			return
		}
		obj := captured(id)
		if obj == nil {
			return
		}
		if _, isMap := obj.Type().Underlying().(*types.Map); isMap {
			pass.Reportf(l.Pos(),
				"goroutine writes captured map %s without a dominating Lock (concurrent map write)",
				obj.Name())
			return
		}
		// Slice element write: sharded-worker writes indexed by a
		// literal-local or per-iteration loop variable are disjoint;
		// an index that is itself shared captured state is not.
		sharedIdx := sharedIndexVar(pass, lit, l.Index, loopVars)
		if sharedIdx != nil {
			pass.Reportf(l.Pos(),
				"goroutine writes %s[%s] where the index is shared across goroutines",
				obj.Name(), sharedIdx.Name())
		}
	}
}

func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// sharedIndexVar returns a variable referenced by the index expression
// that is captured from outside the literal and is not a per-iteration
// loop variable — i.e. an index whose value is shared across the
// spawned goroutines.
func sharedIndexVar(pass *Pass, lit *ast.FuncLit, index ast.Expr, loopVars map[types.Object]bool) *types.Var {
	var found *types.Var
	ast.Inspect(index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found != nil {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // literal-local
		}
		if loopVars[obj] {
			return true // per-iteration copy under go1.22
		}
		if _, isBasic := obj.Type().Underlying().(*types.Basic); !isBasic {
			return true // only scalar indices matter
		}
		found = obj
		return false
	})
	return found
}
