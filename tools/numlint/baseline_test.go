package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func diag(analyzer, file string, line int, msg string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestFilterBaseline(t *testing.T) {
	modDir := "/mod"
	diags := []Diagnostic{
		diag("divguard", "/mod/a/a.go", 10, "divide"),
		diag("divguard", "/mod/a/a.go", 40, "divide"), // same key, second hit
		diag("hotalloc", "/mod/b/b.go", 5, "make"),
	}

	t.Run("empty baseline passes everything through", func(t *testing.T) {
		newF, accepted := filterBaseline(&Baseline{}, modDir, diags)
		if len(newF) != 3 || len(accepted) != 0 {
			t.Fatalf("got %d new, %d accepted; want 3, 0", len(newF), len(accepted))
		}
	})

	t.Run("entry without count absorbs one finding", func(t *testing.T) {
		b := &Baseline{Findings: []BaselineEntry{
			{Analyzer: "divguard", File: "a/a.go", Message: "divide"},
		}}
		newF, accepted := filterBaseline(b, modDir, diags)
		if len(accepted) != 1 || len(newF) != 2 {
			t.Fatalf("got %d new, %d accepted; want 2, 1", len(newF), len(accepted))
		}
		// Line numbers are deliberately not part of the match: the first
		// occurrence is absorbed, the second is new.
		if newF[0].Pos.Line != 40 {
			t.Fatalf("new finding at line %d, want the second occurrence (40)", newF[0].Pos.Line)
		}
	})

	t.Run("count widens the budget", func(t *testing.T) {
		b := &Baseline{Findings: []BaselineEntry{
			{Analyzer: "divguard", File: "a/a.go", Message: "divide", Count: 2},
			{Analyzer: "hotalloc", File: "b/b.go", Message: "make"},
		}}
		newF, accepted := filterBaseline(b, modDir, diags)
		if len(newF) != 0 || len(accepted) != 3 {
			t.Fatalf("got %d new, %d accepted; want 0, 3", len(newF), len(accepted))
		}
	})

	t.Run("message mismatch does not match", func(t *testing.T) {
		b := &Baseline{Findings: []BaselineEntry{
			{Analyzer: "divguard", File: "a/a.go", Message: "other"},
		}}
		newF, _ := filterBaseline(b, modDir, diags)
		if len(newF) != 3 {
			t.Fatalf("got %d new findings, want 3", len(newF))
		}
	})
}

func TestBaselineRoundTrip(t *testing.T) {
	modDir := t.TempDir()
	path := filepath.Join(modDir, ".numlint-baseline.json")
	diags := []Diagnostic{
		diag("divguard", filepath.Join(modDir, "a", "a.go"), 10, "divide"),
		diag("divguard", filepath.Join(modDir, "a", "a.go"), 40, "divide"),
		diag("ctxflow", filepath.Join(modDir, "c.go"), 7, "dropped"),
	}
	if err := writeBaseline(path, modDir, diags); err != nil {
		t.Fatal(err)
	}
	b, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 2 {
		t.Fatalf("round-tripped %d entries, want 2 (duplicates fold into a count)", len(b.Findings))
	}
	// Entries are sorted by analyzer, so ctxflow first.
	if b.Findings[0].Analyzer != "ctxflow" || b.Findings[0].count() != 1 {
		t.Fatalf("first entry %+v, want ctxflow count 1", b.Findings[0])
	}
	if b.Findings[1].Analyzer != "divguard" || b.Findings[1].count() != 2 {
		t.Fatalf("second entry %+v, want divguard count 2", b.Findings[1])
	}
	newF, accepted := filterBaseline(b, modDir, diags)
	if len(newF) != 0 || len(accepted) != 3 {
		t.Fatalf("round-tripped baseline: %d new, %d accepted; want 0, 3", len(newF), len(accepted))
	}
}

func TestLoadBaselineMissingFile(t *testing.T) {
	b, err := loadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("missing baseline should be empty, got error %v", err)
	}
	if len(b.Findings) != 0 {
		t.Fatalf("missing baseline has %d findings, want 0", len(b.Findings))
	}
}

func TestWriteJSONReport(t *testing.T) {
	modDir := t.TempDir()
	out, err := os.CreateTemp(t.TempDir(), "report*.json")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	newF := []Diagnostic{diag("hotalloc", filepath.Join(modDir, "b.go"), 5, "make")}
	accepted := []Diagnostic{diag("divguard", filepath.Join(modDir, "a.go"), 10, "divide")}
	if err := writeJSONReport(out, modDir, newF, accepted); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Findings []jsonFinding `json:"findings"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if len(report.Findings) != 2 {
		t.Fatalf("report has %d findings, want 2", len(report.Findings))
	}
	// Sorted by analyzer: divguard (baselined) before hotalloc (new).
	if report.Findings[0].File != "a.go" || !report.Findings[0].Baselined {
		t.Fatalf("first row %+v, want baselined a.go", report.Findings[0])
	}
	if report.Findings[1].File != "b.go" || report.Findings[1].Baselined {
		t.Fatalf("second row %+v, want new b.go", report.Findings[1])
	}
}

// TestReportOrderingDeterministic feeds the same findings in two
// different input orders and demands byte-identical report and baseline
// output: CI artifacts must diff cleanly across runs.
func TestReportOrderingDeterministic(t *testing.T) {
	modDir := t.TempDir()
	diags := []Diagnostic{
		diag("naninf", filepath.Join(modDir, "b.go"), 12, "log of x"),
		diag("divguard", filepath.Join(modDir, "b.go"), 12, "divide by y"),
		diag("divguard", filepath.Join(modDir, "a.go"), 30, "divide by z"),
		diag("divguard", filepath.Join(modDir, "a.go"), 7, "divide by w"),
		diag("divguard", filepath.Join(modDir, "a.go"), 7, "divide by a"),
	}
	reversed := make([]Diagnostic, len(diags))
	for i, d := range diags {
		reversed[len(diags)-1-i] = d
	}

	renderReport := func(in []Diagnostic) []byte {
		t.Helper()
		out, err := os.CreateTemp(t.TempDir(), "report*.json")
		if err != nil {
			t.Fatal(err)
		}
		defer out.Close()
		if err := writeJSONReport(out, modDir, in, nil); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(out.Name())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if a, b := renderReport(diags), renderReport(reversed); string(a) != string(b) {
		t.Errorf("-json report depends on input order:\n%s\nvs\n%s", a, b)
	}

	renderBaseline := func(in []Diagnostic) []byte {
		t.Helper()
		path := filepath.Join(t.TempDir(), "baseline.json")
		if err := writeBaseline(path, modDir, in); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if a, b := renderBaseline(diags), renderBaseline(reversed); string(a) != string(b) {
		t.Errorf("-write-baseline output depends on input order:\n%s\nvs\n%s", a, b)
	}

	// The report order itself is pinned: analyzer, then file, then line,
	// then message.
	var report struct {
		Findings []jsonFinding `json:"findings"`
	}
	if err := json.Unmarshal(renderReport(reversed), &report); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range report.Findings {
		got = append(got, f.Analyzer+" "+f.File+" "+f.Message)
	}
	want := []string{
		"divguard a.go divide by a",
		"divguard a.go divide by w",
		"divguard a.go divide by z",
		"divguard b.go divide by y",
		"naninf b.go log of x",
	}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("report order:\n got %q\nwant %q", got, want)
		}
	}
}
