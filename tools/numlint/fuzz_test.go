package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// FuzzParseDirective throws arbitrary comment text at the directive
// matcher and the //numlint:ignore collector. Neither may panic, and a
// positive match must really carry the directive prefix.
func FuzzParseDirective(f *testing.F) {
	f.Add("//numlint:ignore divguard guarded by caller", "ignore")
	f.Add("// numlint:hotpath", "hotpath")
	f.Add("//numlint:normalized renormalised two lines up", "normalized")
	f.Add("//numlint:hotpathological", "hotpath")
	f.Add("/* numlint:ignore floatcmp block comment */", "ignore")
	f.Add("//", "")
	f.Add("not a comment at all", "ignore")
	f.Fuzz(func(t *testing.T, comment, name string) {
		if directiveNamed(comment, name) {
			text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
			if !strings.HasPrefix(text, "numlint:"+name) {
				t.Errorf("directiveNamed(%q, %q) = true, but the comment lacks the directive", comment, name)
			}
		}
		// Feed the comment through the real ignore collector whenever it
		// yields a parseable file, so malformed ignore lines cannot crash
		// the analyzer driver.
		src := "package p\n\n" + comment + "\nvar X = 1\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			return
		}
		dir := collectIgnores(fset, []*ast.File{file})
		_ = dir.suppressed(Diagnostic{
			Pos:      token.Position{Filename: "fuzz.go", Line: 4, Column: 1},
			Analyzer: "divguard",
			Message:  "probe",
		})
	})
}
