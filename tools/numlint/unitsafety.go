package main

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// unitsafetyAnalyzer flags raw numeric literals supplied where an
// internal/units typed quantity (Current, Charge, Duration, Rate) is
// expected — as a call argument or a struct-literal field value.
//
// Go's untyped constants convert silently, so `OnOff(f, k, 0.2)`
// compiles whether the author meant 0.2 A or 0.2 mA. Requiring an
// explicit constructor (units.Milliamps(200)) or a named constant keeps
// the unit visible at the call site. A literal 0 is unit-free and
// therefore allowed.
var unitsafetyAnalyzer = &Analyzer{
	Name: "unitsafety",
	Doc:  "flag raw numeric literals passed as internal/units typed quantities",
	Run:  runUnitSafety,
}

func runUnitSafety(pass *Pass) {
	unitsPath := pass.ModPath + "/internal/units"
	isUnitsType := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return false
		}
		return named.Obj().Pkg().Path() == unitsPath && isFloat(named)
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, e, isUnitsType)
			case *ast.CompositeLit:
				checkCompositeLit(pass, e, isUnitsType)
			}
			return true
		})
	}
}

func checkCall(pass *Pass, call *ast.CallExpr, isUnitsType func(types.Type) bool) {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, e.g. units.Current(x) — the unit choice is explicit
	}
	sig, ok := pass.Info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i)
		if pt == nil || !isUnitsType(pt) {
			continue
		}
		if lit := rawNumericLiteral(pass, arg); lit != nil {
			pass.Reportf(arg.Pos(),
				"raw numeric literal %s passed as %s; use a units constructor (e.g. units.%s(...)) or a named constant",
				types.ExprString(arg), types.TypeString(pt, types.RelativeTo(pass.Pkg)), constructorHint(pt))
		}
	}
}

func checkCompositeLit(pass *Pass, cl *ast.CompositeLit, isUnitsType func(types.Type) bool) {
	t := pass.Info.Types[cl].Type
	if t == nil {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	fieldByName := map[string]*types.Var{}
	for i := 0; i < st.NumFields(); i++ {
		fieldByName[st.Field(i).Name()] = st.Field(i)
	}
	for i, elt := range cl.Elts {
		var fieldType types.Type
		value := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				if fv := fieldByName[key.Name]; fv != nil {
					fieldType = fv.Type()
				}
			}
			value = kv.Value
		} else if i < st.NumFields() {
			fieldType = st.Field(i).Type()
		}
		if fieldType == nil || !isUnitsType(fieldType) {
			continue
		}
		if lit := rawNumericLiteral(pass, value); lit != nil {
			pass.Reportf(value.Pos(),
				"raw numeric literal %s assigned to %s field; use a units constructor (e.g. units.%s(...)) or a named constant",
				types.ExprString(value), types.TypeString(fieldType, types.RelativeTo(pass.Pkg)), constructorHint(fieldType))
		}
	}
}

// paramType returns the type of argument i, unrolling variadic tails.
func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
		return last
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// rawNumericLiteral returns the literal if e is a bare nonzero numeric
// literal (optionally signed), else nil.
func rawNumericLiteral(pass *Pass, e ast.Expr) ast.Expr {
	inner := ast.Unparen(e)
	if ue, ok := inner.(*ast.UnaryExpr); ok && (ue.Op == token.SUB || ue.Op == token.ADD) {
		inner = ast.Unparen(ue.X)
	}
	bl, ok := inner.(*ast.BasicLit)
	if !ok || (bl.Kind != token.INT && bl.Kind != token.FLOAT) {
		return nil
	}
	if tv := pass.Info.Types[e]; tv.Value != nil && tv.Value.Kind() != constant.Unknown && constant.Sign(tv.Value) == 0 {
		return nil // a literal zero carries no unit ambiguity
	}
	return e
}

func constructorHint(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return "X"
	}
	switch named.Obj().Name() {
	case "Current":
		return "Milliamps"
	case "Charge":
		return "MilliampHours"
	case "Duration":
		return "Seconds"
	case "Rate":
		return "PerSecond"
	}
	return named.Obj().Name()
}
