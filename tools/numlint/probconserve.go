package main

import (
	"go/ast"
	"go/types"
	"strings"

	"batlife/tools/numlint/internal/flow"
	"batlife/tools/numlint/internal/summary"
)

// probconserveAnalyzer enforces probability conservation on the solve
// path: a function in a solve-path package that builds or mutates a
// []float64 and returns it must, on every path from the last write to
// the return, either pass the vector through a conservation guard —
// internal/check.Probabilities / UnitInterval / NonNegative, or any
// normalize-named function — or carry an explicit
// //numlint:normalized <why> assertion on the return (or the function's
// doc comment, covering every return).
//
// Uniformisation is only sound on normalized, non-negative vectors
// (Fox–Glynn weights assume a distribution), so an unguarded write that
// reaches a return is exactly the place a silent conservation bug
// escapes into downstream solves.
//
// Scope: packages whose import path ends in one of the solve-path
// segments below. Vectors returned untouched (pure pass-through) are
// not flagged; neither are non-identifier returns, which the analysis
// cannot track (keep returns of built vectors as plain identifiers).
var probconserveAnalyzer = &Analyzer{
	Name: "probconserve",
	Doc:  "flag probability-vector writes that reach a return without a conservation guard",
	Run:  runProbconserve,
}

// probconservePackages are the solve-path package segments in scope.
// "probconserve" admits the analyzer's own testdata fixture.
var probconservePackages = map[string]bool{
	"ctmc":         true,
	"foxglynn":     true,
	"discretize":   true,
	"core":         true,
	"dist":         true,
	"probconserve": true,
}

// pcState tracks, per tracked vector: written (may-written on some
// path) and blessed (guarded on every path since the last write).
type pcState struct {
	written map[types.Object]bool
	blessed map[types.Object]bool
}

func (s pcState) clone() pcState {
	out := pcState{written: map[types.Object]bool{}, blessed: map[types.Object]bool{}}
	for k := range s.written {
		out.written[k] = true
	}
	for k := range s.blessed {
		out.blessed[k] = true
	}
	return out
}

func runProbconserve(pass *Pass) {
	seg := pass.Pkg.Path()
	if i := strings.LastIndex(seg, "/"); i >= 0 {
		seg = seg[i+1:]
	}
	if !probconservePackages[seg] {
		return
	}
	normalized := lineDirectives(pass.Fset, pass.Files, "normalized")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkProbFunc(pass, fd, normalized)
		}
	}
}

// floatSliceResults returns the named result objects of type []float64;
// ok reports whether the function has any []float64 result at all.
func floatSliceResults(pass *Pass, fd *ast.FuncDecl) (named map[types.Object]bool, ok bool) {
	if fd.Type.Results == nil {
		return nil, false
	}
	named = map[types.Object]bool{}
	for _, res := range fd.Type.Results.List {
		t := pass.Info.Types[res.Type].Type
		if !isFloatSlice(t) {
			continue
		}
		ok = true
		for _, name := range res.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				named[obj] = true
			}
		}
	}
	return named, ok
}

func isFloatSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	return ok && isFloat(sl.Elem())
}

func checkProbFunc(pass *Pass, fd *ast.FuncDecl, normalized map[string]map[int]bool) {
	namedResults, returnsVec := floatSliceResults(pass, fd)
	if !returnsVec || funcDirective(fd, "normalized") {
		return
	}
	if hasVectorEnsures(pass, fd) {
		// A declared //numlint:ensures normalized/unitinterval contract
		// supersedes this heuristic: the contract analyzer proves the
		// property on every return and the generated debugchecks shim
		// re-checks it at runtime.
		return
	}
	g := flow.New(fd.Body)
	step := func(s pcState, n ast.Node) pcState { return probStep(pass, s, n) }
	problem := &flow.Forward[pcState]{
		Entry: pcState{written: map[types.Object]bool{}, blessed: map[types.Object]bool{}},
		Meet: func(a, b pcState) pcState {
			out := pcState{written: map[types.Object]bool{}, blessed: map[types.Object]bool{}}
			for k := range a.written {
				out.written[k] = true
			}
			for k := range b.written {
				out.written[k] = true
			}
			for k := range a.blessed {
				if b.blessed[k] {
					out.blessed[k] = true
				}
			}
			return out
		},
		Equal: func(a, b pcState) bool {
			return equalObjSet(a.written, b.written) && equalObjSet(a.blessed, b.blessed)
		},
		Transfer: func(b *flow.Block, in pcState) pcState {
			out := in
			for _, n := range b.Nodes {
				out = step(out, n)
			}
			return out
		},
	}
	sol := problem.Solve(g)

	for _, site := range g.Returns {
		in, reachable := sol.In(site.Block)
		if !reachable {
			continue
		}
		// Replay the block up to the return statement.
		state := in
		for _, n := range site.Block.Nodes {
			if n == site.Stmt {
				break
			}
			state = step(state, n)
		}
		if markedAt(normalized, pass.Fset, site.Stmt.Pos()) {
			continue
		}
		report := func(obj types.Object) {
			pass.Reportf(site.Stmt.Pos(),
				"probability vector %s can reach this return after a write with no conservation guard (check.Probabilities/NonNegative, a normalize call, or //numlint:normalized <why>)",
				obj.Name())
		}
		if len(site.Stmt.Results) == 0 {
			// Bare return: named []float64 results are the vectors.
			for obj := range namedResults {
				if state.written[obj] && !state.blessed[obj] {
					report(obj)
				}
			}
			continue
		}
		for _, res := range site.Stmt.Results {
			id, ok := ast.Unparen(res).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.Uses[id]
			if obj == nil || !isFloatSlice(obj.Type()) {
				continue
			}
			if state.written[obj] && !state.blessed[obj] {
				report(obj)
			}
		}
	}
}

// probStep is the transfer function for one statement: blessing calls
// first (so `v = normalize(v)` blesses), then writes, which dirty the
// vector and revoke any earlier blessing.
func probStep(pass *Pass, s pcState, n ast.Node) pcState {
	out := s
	cloned := false
	mutate := func() {
		if !cloned {
			out = out.clone()
			cloned = true
		}
	}
	bless := func(obj types.Object) {
		mutate()
		out.blessed[obj] = true
	}
	write := func(obj types.Object) {
		mutate()
		out.written[obj] = true
		delete(out.blessed, obj)
	}
	flow.Inspect(n, func(nd ast.Node) bool {
		switch e := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isConservationGuard(pass, e) {
				for _, arg := range e.Args {
					if obj := sliceIdent(pass, arg); obj != nil {
						bless(obj)
					}
				}
			} else if pass.Inter != nil {
				// Contract-declared asserts bless the same way the
				// hard-wired check.* names do.
				for arg, ps := range pass.Inter.sums.VectorAssertPreds(pass.Info, e) {
					if ps&summary.StaticMask(true) == 0 {
						continue
					}
					if obj := sliceIdent(pass, arg); obj != nil {
						bless(obj)
					}
				}
			}
		case *ast.AssignStmt:
			// Blessing assignment: v = normalize(v).
			rhsBless := len(e.Rhs) == 1 && isNormalizeCall(pass, e.Rhs[0])
			for _, lhs := range e.Lhs {
				switch l := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					if obj := pass.Info.Uses[l]; obj != nil && isFloatSlice(obj.Type()) {
						if rhsBless {
							bless(obj)
						} else {
							write(obj)
						}
					} else if obj := pass.Info.Defs[l]; obj != nil && isFloatSlice(obj.Type()) {
						if rhsBless {
							bless(obj)
						} else {
							write(obj)
						}
					}
				case *ast.IndexExpr:
					if obj := sliceIdent(pass, l.X); obj != nil {
						write(obj)
					}
				}
			}
		}
		return true
	})
	return out
}

// isConservationGuard recognises the internal/check conservation
// asserts and normalize-named callees.
func isConservationGuard(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "/check") {
		switch fn.Name() {
		case "Probabilities", "UnitInterval", "NonNegative":
			return true
		}
	}
	return strings.Contains(strings.ToLower(fn.Name()), "normali")
}

func isNormalizeCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if isConservationGuard(pass, call) {
		return true
	}
	// A callee whose contract (declared or inferred through the summary
	// fixed point) ensures a conservation predicate on its first vector
	// result blesses the assigned vector, e.g. v = renormed(v) where
	// renormed forwards a normalize-named helper.
	if pass.Inter != nil {
		return pass.Inter.sums.CallResultVectorPreds(pass.Info, call, 0)&summary.StaticMask(true) != 0
	}
	return false
}

// hasVectorEnsures reports whether fd declares an ensures clause on a
// vector result.
func hasVectorEnsures(pass *Pass, fd *ast.FuncDecl) bool {
	if pass.Inter == nil {
		return false
	}
	fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return false
	}
	ct := pass.Inter.sums.ContractOf(fn)
	if ct == nil {
		return false
	}
	for _, cl := range ct.Ensures {
		if cl.Vector {
			return true
		}
	}
	return false
}

func sliceIdent(pass *Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil || !isFloatSlice(obj.Type()) {
		return nil
	}
	return obj
}

func equalObjSet(a, b map[types.Object]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
