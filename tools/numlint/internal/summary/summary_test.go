package summary

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"batlife/tools/numlint/internal/callgraph"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		line    string
		kind    Kind
		clauses []RawClause
		err     bool
		skip    bool // not a contract directive at all
	}{
		{line: "//numlint:requires positive(lambda)", kind: KindRequires,
			clauses: []RawClause{{Positive, "lambda"}}},
		{line: "//numlint:requires positive(a), nonzero(b)", kind: KindRequires,
			clauses: []RawClause{{Positive, "a"}, {NonZero, "b"}}},
		{line: "//numlint:ensures normalized", kind: KindEnsures,
			clauses: []RawClause{{Normalized, ""}}},
		{line: "//numlint:ensures unitinterval(cdf)", kind: KindEnsures,
			clauses: []RawClause{{UnitInterval, "cdf"}}},
		{line: "//numlint:asserts finite(xs)", kind: KindAsserts,
			clauses: []RawClause{{Finite, "xs"}}},
		{line: "//numlint:ignore floatcmp tolerance test", skip: true},
		{line: "//numlint:normalized weights sum to one", skip: true},
		{line: "// plain comment", skip: true},
		{line: "//numlint:requires", err: true},
		{line: "//numlint:requires positive", err: true},     // missing target
		{line: "//numlint:requires positive(", err: true},    // unclosed
		{line: "//numlint:requires positive()", err: true},   // empty target
		{line: "//numlint:requires positive(x),", err: true}, // trailing comma
		{line: "//numlint:ensures sorted", err: true},        // unknown pred
		{line: "//numlint:requires positive(2x)", err: true}, // bad ident
		{line: "//numlint:asserts nonnegative", err: true},   // asserts needs target
		{line: "//numlint:requires positive(x) why", err: true} /* trailing prose */}
	for _, tc := range cases {
		d, err := ParseDirective(tc.line)
		switch {
		case tc.skip:
			if d != nil || err != nil {
				t.Errorf("%q: want (nil, nil), got (%v, %v)", tc.line, d, err)
			}
		case tc.err:
			if err == nil {
				t.Errorf("%q: want error, got %v", tc.line, d)
			}
		default:
			if err != nil || d == nil {
				t.Errorf("%q: unexpected (%v, %v)", tc.line, d, err)
				continue
			}
			if d.Kind != tc.kind || len(d.Clauses) != len(tc.clauses) {
				t.Errorf("%q: got kind %v clauses %v", tc.line, d.Kind, d.Clauses)
				continue
			}
			for i, c := range tc.clauses {
				if d.Clauses[i] != c {
					t.Errorf("%q clause %d: got %v want %v", tc.line, i, d.Clauses[i], c)
				}
			}
		}
	}
}

func TestPredSetClosure(t *testing.T) {
	if !Positive.Set().Has(NonZero) || !Positive.Set().Has(NonNegative) {
		t.Error("positive must imply nonzero and nonnegative")
	}
	if !Normalized.Set().Has(UnitInterval) || !Normalized.Set().Has(NonNegative) {
		t.Error("normalized must imply unitinterval and nonnegative")
	}
	if !UnitInterval.Set().Has(NonNegative) {
		t.Error("unitinterval must imply nonnegative")
	}
	if NonZero.Set().Has(NonNegative) || Finite.Set().Has(NonZero) {
		t.Error("unexpected implication")
	}
}

func load(t *testing.T, src string) *callgraph.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &callgraph.Package{Path: "p", Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
}

func compute(t *testing.T, src string) (*Set, []Issue) {
	t.Helper()
	p := load(t, src)
	g := callgraph.Build([]*callgraph.Package{p})
	contracts, issues := CollectContracts([]*callgraph.Package{p})
	s := Compute(g, contracts, Options{
		InferBody: func(*callgraph.Package, *ast.FuncDecl) bool { return true },
	})
	return s, issues
}

func sumOf(t *testing.T, s *Set, name string) *Summary {
	t.Helper()
	for fn, sum := range s.sums {
		if fn.Name() == name {
			return sum
		}
	}
	t.Fatalf("no summary for %q", name)
	return nil
}

const ensuresSrc = `package p

func one() float64 { return 1 }

func clamp(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

// countdown recurses back to its base case.
func countdown(n float64) float64 {
	if n <= 0 {
		return 1
	}
	return countdown(n - 1)
}

func evenStep(n float64) float64 {
	if n <= 0 {
		return 0.5
	}
	return oddStep(n - 1)
}

func oddStep(n float64) float64 { return evenStep(n - 1) }

func badBase(n float64) float64 {
	if n <= 0 {
		return -1
	}
	return badBase(n - 1)
}

func zeros(n int) []float64 { return make([]float64, n) }

func viaEnsure() []float64 {
	v := zeros(3)
	return v
}

func normalizeVec(v []float64) []float64 { return v }

func renormed(n int) []float64 {
	v := make([]float64, n)
	v[0] = 2
	return normalizeVec(v)
}

func dirty(n int) []float64 {
	v := make([]float64, n)
	v[0] = 2
	return v
}

// declaredOnly promises what the body cannot prove statically.
//
//numlint:ensures finite
func declaredOnly(x float64) float64 { return x * 2 }
`

func TestComputeEnsures(t *testing.T) {
	s, issues := compute(t, ensuresSrc)
	if len(issues) != 0 {
		t.Fatalf("unexpected issues: %v", issues)
	}
	cases := []struct {
		fn   string
		idx  int
		want PredSet
	}{
		{"one", 0, Positive.Set() | UnitInterval.Set() | Finite.Set()},
		{"clamp", 0, NonNegative.Set()},
		{"countdown", 0, Positive.Set() | UnitInterval.Set() | Finite.Set()},
		{"evenStep", 0, Positive.Set() | UnitInterval.Set() | Finite.Set()},
		{"oddStep", 0, Positive.Set() | UnitInterval.Set() | Finite.Set()},
		{"badBase", 0, NonZero.Set() | Finite.Set()},
		{"zeros", 0, UnitInterval.Set() | Finite.Set()},
		{"viaEnsure", 0, UnitInterval.Set() | Finite.Set()},
		{"renormed", 0, Normalized.Set()},
		{"dirty", 0, 0},
	}
	for _, tc := range cases {
		sum := sumOf(t, s, tc.fn)
		if got := sum.Proven[tc.idx]; got != tc.want {
			t.Errorf("%s: proven %v, want %v", tc.fn, got, tc.want)
		}
	}
	// Declared-but-unproven clauses still reach Ensures (the runtime
	// shim backs them) without polluting Proven.
	d := sumOf(t, s, "declaredOnly")
	if d.Proven[0].Has(Finite) {
		t.Error("declaredOnly: finite must not be statically proven")
	}
	if !d.Ensures[0].Has(Finite) {
		t.Error("declaredOnly: declared finite must reach Ensures")
	}
}

// TestFixedPointStable re-runs every node's transfer after Compute and
// demands nothing moves: summaries are a fixed point, including on the
// recursive (countdown, badBase) and mutually recursive
// (evenStep/oddStep) fixtures.
func TestFixedPointStable(t *testing.T) {
	s, _ := compute(t, ensuresSrc)
	for fn, sum := range s.sums {
		if s.update(sum.Node) {
			t.Errorf("summary of %s changed on re-evaluation: not a fixed point", fn.Name())
		}
	}
}

const requiresSrc = `package p

import "math"

func inv(d float64) float64 { return 1 / d }

func lg(x float64) float64 { return math.Log(x) }

func root(x float64) float64 { return math.Sqrt(x) }

// propagate passes its parameter to a callee that divides by it.
func propagate(x float64) float64 { return inv(x) }

func guarded(x float64) float64 {
	if x == 0 {
		return 0
	}
	return inv(x)
}

func shortCircuit(x float64) float64 {
	if x != 0 && 1/x > 2 {
		return 1
	}
	return 0
}

// declared carries its obligation as a contract, so nothing is
// inferred on top of it.
//
//numlint:requires nonzero(d)
func declared(d float64) float64 { return 1 / d }
`

func TestComputeRequires(t *testing.T) {
	s, issues := compute(t, requiresSrc)
	if len(issues) != 0 {
		t.Fatalf("unexpected issues: %v", issues)
	}
	cases := []struct {
		fn       string
		idx      int
		inferred PredSet
	}{
		{"inv", 0, NonZero.Set()},
		{"lg", 0, Positive.Set()},
		{"root", 0, NonNegative.Set()},
		{"propagate", 0, NonZero.Set()}, // lifted from inv
		{"guarded", 0, 0},
		{"shortCircuit", 0, 0}, // conjunct guard counts
	}
	for _, tc := range cases {
		sum := sumOf(t, s, tc.fn)
		if got := sum.InferredRequires[tc.idx]; got != tc.inferred {
			t.Errorf("%s: inferred %v, want %v", tc.fn, got, tc.inferred)
		}
	}
	d := sumOf(t, s, "declared")
	if d.InferredRequires[0] != 0 {
		t.Errorf("declared: obligation should be discharged by the contract, inferred %v", d.InferredRequires[0])
	}
	if !d.Requires[0].Has(NonZero) {
		t.Error("declared: contract requires missing")
	}
}

const contextSrc = `package p

func use(d float64) float64 { return d }

func entryA(x float64) float64 {
	if x > 0 {
		return use(x)
	}
	return 0
}

func entryB(y float64) float64 {
	if y != 0 {
		return use(y)
	}
	return 0
}

func mixed(d float64) float64 { return d }

func callMixed(x float64) float64 {
	if x > 0 {
		_ = mixed(x)
	}
	return mixed(x) // unguarded second site
}

func Exported(d float64) float64 { return d }

func callExported() float64 { return Exported(1) }

func escaped(d float64) float64 { return d }

func grab() func(float64) float64 { return escaped }
`

func TestContextFacts(t *testing.T) {
	s, _ := compute(t, contextSrc)
	// Every visible site guards: meet of Positive and NonZero.
	if got := sumOf(t, s, "use").Context[0]; got != NonZero.Set() {
		t.Errorf("use: context %v, want nonzero", got)
	}
	// One unguarded site drains the meet.
	if got := sumOf(t, s, "mixed").Context[0]; got != 0 {
		t.Errorf("mixed: context %v, want none", got)
	}
	// Exported functions outside internal/ are not trusted.
	if got := sumOf(t, s, "Exported").Context[0]; got != 0 {
		t.Errorf("Exported: context %v, want none", got)
	}
	// Address-taken functions have invisible call sites.
	if got := sumOf(t, s, "escaped").Context[0]; got != 0 {
		t.Errorf("escaped: context %v, want none", got)
	}
}

const issueSrc = `package p

//numlint:requires positive(nope)
func a(x float64) float64 { return x }

//numlint:requires normalized(x)
func b(x float64) float64 { return x }

//numlint:ensures positive
func c(v []float64) []float64 { return v }

//numlint:requires positive(s)
func d(s string) string { return s }

//numlint:requires bogus(x
func e(x float64) float64 { return x }
`

func TestContractIssues(t *testing.T) {
	p := load(t, issueSrc)
	_, issues := CollectContracts([]*callgraph.Package{p})
	if len(issues) != 5 {
		for _, is := range issues {
			t.Logf("issue: %s", is.Msg)
		}
		t.Fatalf("got %d issues, want 5", len(issues))
	}
}
