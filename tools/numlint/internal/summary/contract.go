package summary

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"batlife/tools/numlint/internal/callgraph"
)

// Clause is one contract clause resolved against a function signature.
type Clause struct {
	Pred Pred
	Kind Kind
	// Target is the parameter or named-result identifier from the
	// directive ("" for a default-result ensures).
	Target string
	// Index is the parameter index (requires/asserts) or result index
	// (ensures) in signature order, excluding any receiver.
	Index int
	// Vector reports the target's shape: []float64 (true) vs a float
	// scalar (false). A variadic ...float64 parameter counts as scalar —
	// the clause applies to each argument.
	Vector bool
	// Variadic marks a clause on the variadic parameter.
	Variadic bool
	// Pos is the directive's position, for diagnostics.
	Pos token.Pos
}

// Contract is the set of declared clauses of one function.
type Contract struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	// Requires must hold at every call site; the contract analyzer
	// enforces the statically checkable ones there.
	Requires []Clause
	// Ensures must be established by the body on every return; callers
	// may assume them of results.
	Ensures []Clause
	// Asserts means the function runtime-checks (panics otherwise) that
	// the clause holds of its argument, so a completed call establishes
	// the clause as a fact. Used by internal/check and the generated
	// contract shims; never an obligation on callers.
	Asserts []Clause
}

// Issue is a problem with a contract directive itself — a parse error,
// an unknown target, or a shape mismatch. The contract analyzer reports
// issues of its package.
type Issue struct {
	PkgPath string
	Pos     token.Pos
	Msg     string
}

// CollectContracts parses the contract directives off every function
// declaration's doc comment and resolves the clauses against the
// signatures. Functions whose directives are partially malformed keep
// their valid clauses; each problem becomes an Issue.
func CollectContracts(pkgs []*callgraph.Package) (map[*types.Func]*Contract, []Issue) {
	out := map[*types.Func]*Contract{}
	var issues []Issue
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					d, err := ParseDirective(c.Text)
					if err != nil {
						issues = append(issues, Issue{p.Path, c.Pos(), err.Error()})
						continue
					}
					if d == nil {
						continue
					}
					ct := out[fn]
					if ct == nil {
						ct = &Contract{Fn: fn, Decl: fd}
						out[fn] = ct
					}
					for _, rc := range d.Clauses {
						cl, err := resolveClause(fn, d.Kind, rc)
						if err != nil {
							issues = append(issues, Issue{p.Path, c.Pos(), err.Error()})
							continue
						}
						cl.Pos = c.Pos()
						switch d.Kind {
						case KindRequires:
							ct.Requires = append(ct.Requires, cl)
						case KindEnsures:
							ct.Ensures = append(ct.Ensures, cl)
						case KindAsserts:
							ct.Asserts = append(ct.Asserts, cl)
						}
					}
				}
			}
		}
	}
	return out, issues
}

func resolveClause(fn *types.Func, kind Kind, rc RawClause) (Clause, error) {
	sig := fn.Type().(*types.Signature)
	cl := Clause{Pred: rc.Pred, Kind: kind, Target: rc.Target}
	switch kind {
	case KindRequires, KindAsserts:
		params := sig.Params()
		idx := -1
		for i := 0; i < params.Len(); i++ {
			if params.At(i).Name() == rc.Target {
				idx = i
				break
			}
		}
		if idx < 0 {
			return cl, fmt.Errorf("numlint:%s %s(%s): %s has no parameter %q",
				kind, rc.Pred, rc.Target, fn.Name(), rc.Target)
		}
		cl.Index = idx
		cl.Variadic = sig.Variadic() && idx == params.Len()-1
		t := params.At(idx).Type()
		if cl.Variadic {
			t = t.(*types.Slice).Elem()
		}
		vector, ok := predShape(t)
		if !ok {
			return cl, fmt.Errorf("numlint:%s %s(%s): parameter has type %s; contracts apply to float and []float64 targets",
				kind, rc.Pred, rc.Target, t)
		}
		cl.Vector = vector
	case KindEnsures:
		results := sig.Results()
		idx := -1
		if rc.Target == "" {
			for i := 0; i < results.Len(); i++ {
				if _, ok := predShape(results.At(i).Type()); !ok {
					continue
				}
				if idx >= 0 {
					return cl, fmt.Errorf("numlint:ensures %s: %s has several float results; name one",
						rc.Pred, fn.Name())
				}
				idx = i
			}
			if idx < 0 {
				return cl, fmt.Errorf("numlint:ensures %s: %s has no float or []float64 result",
					rc.Pred, fn.Name())
			}
		} else {
			for i := 0; i < results.Len(); i++ {
				if results.At(i).Name() == rc.Target {
					idx = i
					break
				}
			}
			if idx < 0 {
				return cl, fmt.Errorf("numlint:ensures %s(%s): %s has no named result %q",
					rc.Pred, rc.Target, fn.Name(), rc.Target)
			}
		}
		cl.Index = idx
		vector, ok := predShape(results.At(idx).Type())
		if !ok {
			return cl, fmt.Errorf("numlint:ensures %s: result %d has type %s; contracts apply to float and []float64 targets",
				rc.Pred, idx, results.At(idx).Type())
		}
		cl.Vector = vector
	}
	if !cl.Pred.AppliesTo(cl.Vector) {
		shape := "float64"
		if cl.Vector {
			shape = "[]float64"
		}
		return cl, fmt.Errorf("numlint:%s: predicate %s does not apply to a %s target", kind, cl.Pred, shape)
	}
	return cl, nil
}

// predShape classifies a contractable target type: (false, true) for a
// float scalar, (true, true) for []float64, (_, false) otherwise.
func predShape(t types.Type) (vector, ok bool) {
	if isFloatType(t) {
		return false, true
	}
	if sl, sok := t.Underlying().(*types.Slice); sok && isFloatType(sl.Elem()) {
		return true, true
	}
	return false, false
}

func isFloatType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
