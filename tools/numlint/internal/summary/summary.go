package summary

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"batlife/tools/numlint/internal/callgraph"
	"batlife/tools/numlint/internal/flow"
)

// Summary is the interprocedural fact sheet of one declared function.
// All slices are indexed in signature order (receiver excluded).
type Summary struct {
	Node     *callgraph.Node
	Contract *Contract // nil when the function declares no contract
	// Requires holds the declared caller obligations per parameter.
	Requires []PredSet
	// InferredRequires holds obligations the body analysis discovered
	// beyond the declared ones: a parameter flows unguarded into a
	// division, a math.Log/Sqrt, or a callee with its own requires.
	// Inference is restricted by Options.InferBody. Never enforced as a
	// declared contract — divguard uses these for call-site findings.
	InferredRequires []PredSet
	// Proven holds, per result, the predicates the body establishes on
	// every reachable return (assuming declared requires on entry and
	// callee ensures at calls). For vectors, a nil return satisfies any
	// predicate vacuously.
	Proven []PredSet
	// Ensures is what callers may assume: declared ensures (the runtime
	// shims back the non-static ones) joined with Proven.
	Ensures []PredSet
	// Context holds, per parameter, the meet over every visible call
	// site of the facts the caller had already established for the
	// argument. Only populated for functions whose call sites are all
	// visible (see trusted); zero otherwise.
	Context []PredSet
}

// Options configures Compute.
type Options struct {
	// InferBody, when non-nil, gates obligation inference to functions
	// inside the cleanliness envelope the intraprocedural analyzers
	// already police (float-returning, no documented precondition).
	// Declared contracts are always processed regardless.
	InferBody func(p *callgraph.Package, fd *ast.FuncDecl) bool
}

// Set is the computed summary universe of one module load.
type Set struct {
	Graph     *callgraph.Graph
	Contracts map[*types.Func]*Contract
	opt       Options
	sums      map[*types.Func]*Summary
	bodies    map[*callgraph.Node]*body
}

// Of returns the summary of fn, or nil for functions without a
// declaration in the analyzed set.
func (s *Set) Of(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	return s.sums[fn]
}

// ContractOf returns fn's declared contract, or nil.
func (s *Set) ContractOf(fn *types.Func) *Contract {
	if fn == nil {
		return nil
	}
	return s.Contracts[fn]
}

// body caches the per-function CFG and the scalar guard-fact solution
// under the function's own entry assumptions (declared requires only —
// context facts are layered on by AnalyzerBody, never here, so the
// context computation cannot feed itself).
type body struct {
	g     *flow.Graph
	fopt  flow.Options
	sol   *flow.Solution[flow.Facts]
	sites map[*ast.CallExpr]nodeAt
}

type nodeAt struct {
	b   *flow.Block
	idx int
}

// Compute builds summaries for every declared function, sweeping the
// call graph bottom-up. Acyclic functions are summarized once off their
// callees' final summaries; each SCC iterates to a fixed point with
// ensures seeded optimistically (greatest fixed point — sound for
// partial correctness: a recursive return path contributes what its
// base cases prove) and requires grown from empty (least fixed point).
func Compute(g *callgraph.Graph, contracts map[*types.Func]*Contract, opt Options) *Set {
	s := &Set{
		Graph:     g,
		Contracts: contracts,
		opt:       opt,
		sums:      map[*types.Func]*Summary{},
		bodies:    map[*callgraph.Node]*body{},
	}
	for fn, n := range g.Nodes {
		if n.Decl == nil {
			continue
		}
		sig := fn.Type().(*types.Signature)
		sum := &Summary{
			Node:             n,
			Contract:         contracts[fn],
			Requires:         make([]PredSet, sig.Params().Len()),
			InferredRequires: make([]PredSet, sig.Params().Len()),
			Proven:           make([]PredSet, sig.Results().Len()),
			Ensures:          make([]PredSet, sig.Results().Len()),
			Context:          make([]PredSet, sig.Params().Len()),
		}
		if ct := sum.Contract; ct != nil {
			for _, cl := range ct.Requires {
				sum.Requires[cl.Index] |= cl.Pred.Set()
			}
			for _, cl := range ct.Ensures {
				sum.Ensures[cl.Index] |= cl.Pred.Set()
			}
		}
		s.sums[fn] = sum
	}

	for _, comp := range g.SCCs() {
		cyclic := len(comp) > 1 || hasSelfEdge(comp[0])
		if cyclic {
			for _, n := range comp {
				s.seedOptimistic(s.sums[n.Fn])
			}
		}
		// Bits only ever flip one way (proven shrinks, requires grows),
		// so the fixed point arrives within the total bit budget; the
		// cap is a safety net, not the convergence argument.
		maxIter := 2 + len(comp)*int(numPreds)*8
		for iter := 0; ; iter++ {
			changed := false
			for _, n := range comp {
				if s.update(n) {
					changed = true
				}
			}
			if !changed || !cyclic || iter >= maxIter {
				break
			}
		}
	}
	s.computeContexts()
	return s
}

func hasSelfEdge(n *callgraph.Node) bool {
	for _, e := range n.Out {
		if e.Callee == n {
			return true
		}
	}
	return false
}

func (s *Set) seedOptimistic(sum *Summary) {
	sig := sum.Node.Fn.Type().(*types.Signature)
	for i := range sum.Proven {
		if vector, ok := predShape(sig.Results().At(i).Type()); ok {
			sum.Proven[i] = ApplicableMask(vector)
			sum.Ensures[i] |= sum.Proven[i]
		}
	}
}

// update recomputes one node's proven/ensures/inferred-requires off the
// current summaries, reporting whether anything moved.
func (s *Set) update(n *callgraph.Node) bool {
	sum := s.sums[n.Fn]
	changed := false
	proven := s.inferProven(n)
	for i, p := range proven {
		if sum.Proven[i] != p {
			sum.Proven[i] = p
			changed = true
		}
		want := p
		if ct := sum.Contract; ct != nil {
			for _, cl := range ct.Ensures {
				if cl.Index == i {
					want |= cl.Pred.Set()
				}
			}
		}
		if sum.Ensures[i] != want {
			sum.Ensures[i] = want
			changed = true
		}
	}
	inferred := s.inferRequires(n)
	for i, r := range inferred {
		r &^= sum.Requires[i] // declared obligations are not re-inferred
		if sum.InferredRequires[i]|r != sum.InferredRequires[i] {
			sum.InferredRequires[i] |= r
			changed = true
		}
	}
	return changed
}

// body returns the cached CFG + scalar solution of a declared node.
func (s *Set) body(n *callgraph.Node) *body {
	if b, ok := s.bodies[n]; ok {
		return b
	}
	info := n.Pkg.Info
	b := &body{
		g:     flow.New(n.Decl.Body),
		sites: map[*ast.CallExpr]nodeAt{},
	}
	b.fopt = flow.Options{
		Entry:   s.entryFacts(n, false),
		Asserts: s.AssertFacts(info),
	}
	b.sol = flow.GuardFactsOpt(info, b.g, b.fopt)
	for _, blk := range b.g.Blocks {
		for idx, nd := range blk.Nodes {
			at := nodeAt{blk, idx}
			flow.Inspect(nd, func(x ast.Node) bool {
				switch c := x.(type) {
				case *ast.FuncLit:
					return false
				case *ast.CallExpr:
					b.sites[c] = at
				}
				return true
			})
		}
	}
	s.bodies[n] = b
	return b
}

// entryFacts maps a node's parameter assumptions onto flow facts:
// declared requires always, call-site context additionally when
// withContext is set.
func (s *Set) entryFacts(n *callgraph.Node, withContext bool) flow.Facts {
	sum := s.sums[n.Fn]
	out := flow.Facts{}
	for i, obj := range paramObjs(n) {
		if obj == nil {
			continue
		}
		ps := sum.Requires[i]
		if withContext {
			ps |= sum.Context[i]
		}
		addFlowFacts(out, obj, ps)
	}
	return out
}

// paramObjs returns the parameter objects of a declaration in signature
// order; entries are nil for unnamed/blank parameters.
func paramObjs(n *callgraph.Node) []types.Object {
	sig := n.Fn.Type().(*types.Signature)
	out := make([]types.Object, sig.Params().Len())
	info := n.Pkg.Info
	i := 0
	if n.Decl.Type.Params == nil {
		return out
	}
	for _, field := range n.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if i >= len(out) {
				return out
			}
			if obj := info.Defs[name]; obj != nil {
				out[i] = obj
			}
			i++
		}
	}
	return out
}

// addFlowFacts records the flow-lattice projection of ps for obj. The
// closure invariant means only the three exact flow predicates need
// mapping.
func addFlowFacts(out flow.Facts, obj types.Object, ps PredSet) {
	if ps.Has(Positive) {
		out[flow.Fact{Obj: obj, P: flow.Positive}] = true
	}
	if ps.Has(NonZero) {
		out[flow.Fact{Obj: obj, P: flow.NonZero}] = true
	}
	if ps.Has(NonNegative) {
		out[flow.Fact{Obj: obj, P: flow.NonNegative}] = true
	}
}

// FactsPreds projects the flow facts of obj back into a PredSet.
func FactsPreds(facts flow.Facts, obj types.Object) PredSet {
	var out PredSet
	if facts.Has(obj, flow.Positive) {
		out |= Positive.Set()
	}
	if facts.Has(obj, flow.NonZero) {
		out |= NonZero.Set()
	}
	if facts.Has(obj, flow.NonNegative) {
		out |= NonNegative.Set()
	}
	return out
}

// AssertFacts returns the flow.Options.Asserts callback for code
// type-checked under info: the scalar facts a completed call
// establishes, from the internal/check assert table and from
// //numlint:asserts contracts.
func (s *Set) AssertFacts(info *types.Info) func(*ast.CallExpr) flow.Facts {
	return func(call *ast.CallExpr) flow.Facts {
		fn := callgraph.StaticCallee(info, call)
		if fn == nil {
			return nil
		}
		out := flow.Facts{}
		addArg := func(e ast.Expr, ps PredSet) {
			id, ok := ast.Unparen(e).(*ast.Ident)
			if !ok {
				return
			}
			if obj := info.Uses[id]; obj != nil {
				addFlowFacts(out, obj, ps)
			}
		}
		if ps := checkScalarAssert(fn); ps != 0 && len(call.Args) > 1 && !call.Ellipsis.IsValid() {
			for _, a := range call.Args[1:] {
				addArg(a, ps)
			}
		}
		if ct := s.Contracts[fn]; ct != nil {
			for _, cl := range ct.Asserts {
				if cl.Vector {
					continue
				}
				switch {
				case cl.Variadic && !call.Ellipsis.IsValid():
					for _, a := range call.Args[cl.Index:] {
						addArg(a, cl.Pred.Set())
					}
				case !cl.Variadic && cl.Index < len(call.Args):
					addArg(call.Args[cl.Index], cl.Pred.Set())
				}
			}
		}
		if len(out) == 0 {
			return nil
		}
		return out
	}
}

// checkScalarAssert maps the internal/check scalar assert helpers —
// signature (site string, xs ...float64) — to the predicate they
// enforce on each argument.
func checkScalarAssert(fn *types.Func) PredSet {
	if fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "/check") {
		return 0
	}
	switch fn.Name() {
	case "Positive":
		return Positive.Set()
	case "NonZero":
		return NonZero.Set()
	case "NonNegativeScalar":
		return NonNegative.Set()
	case "UnitScalar":
		return UnitInterval.Set()
	}
	return 0
}

// checkVectorAssert maps the internal/check vector asserts — signature
// (site string, v []float64) — to the predicates they enforce.
func checkVectorAssert(fn *types.Func) PredSet {
	if fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "/check") {
		return 0
	}
	switch fn.Name() {
	case "Probabilities":
		return Normalized.Set()
	case "UnitInterval":
		return UnitInterval.Set()
	case "NonNegative":
		return NonNegative.Set()
	}
	return 0
}

// ScalarExprPreds returns the predicates provable for a scalar
// expression: constants by value, identifiers by dominating guard
// facts, single-result calls by callee ensures.
func (s *Set) ScalarExprPreds(info *types.Info, facts flow.Facts, e ast.Expr) PredSet {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return constPreds(tv.Value)
	}
	switch x := e.(type) {
	case *ast.Ident:
		if obj := info.Uses[x]; obj != nil {
			return FactsPreds(facts, obj)
		}
	case *ast.CallExpr:
		fn := callgraph.StaticCallee(info, x)
		if sum := s.Of(fn); sum != nil && len(sum.Ensures) == 1 {
			return sum.Ensures[0] & ApplicableMask(false)
		}
	}
	return 0
}

func constPreds(v constant.Value) PredSet {
	if k := v.Kind(); k != constant.Int && k != constant.Float {
		return 0
	}
	out := Finite.Set()
	switch constant.Sign(v) {
	case 1:
		out |= Positive.Set()
	case 0:
		out |= UnitInterval.Set() // zero: nonnegative and within [0,1]
	case -1:
		out |= NonZero.Set()
	}
	if f := constant.ToFloat(v); f.Kind() == constant.Float || f.Kind() == constant.Int {
		if constant.Sign(v) >= 0 && constant.Compare(f, token.LEQ, constant.MakeFloat64(1)) {
			out |= UnitInterval.Set()
		}
	}
	return out
}

// VecFacts is the vector bless lattice: for each []float64 variable,
// the predicates holding since its last write. Zero-pred entries are
// normalized away.
type VecFacts map[types.Object]PredSet

func vecMeet(a, b VecFacts) VecFacts {
	out := VecFacts{}
	for k, av := range a {
		if bv, ok := b[k]; ok && av&bv != 0 {
			out[k] = av & bv
		}
	}
	return out
}

func vecEqual(a, b VecFacts) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		if b[k] != av {
			return false
		}
	}
	return true
}

func (v VecFacts) clone() VecFacts {
	out := make(VecFacts, len(v))
	for k, p := range v {
		out[k] = p
	}
	return out
}

// vecSolve runs the bless lattice over one body: entry facts from the
// declared vector requires, blessing via assert calls and
// ensures-backed assignments, kills on writes.
func (s *Set) vecSolve(n *callgraph.Node, g *flow.Graph) *flow.Solution[VecFacts] {
	entry := VecFacts{}
	sum := s.sums[n.Fn]
	for i, obj := range paramObjs(n) {
		if obj == nil || !isFloatSliceObj(obj) {
			continue
		}
		if ps := sum.Requires[i] & ApplicableMask(true); ps != 0 {
			entry[obj] = ps
		}
	}
	return s.vecSolveWith(n.Pkg.Info, entry, g)
}

func (s *Set) vecSolveWith(info *types.Info, entry VecFacts, g *flow.Graph) *flow.Solution[VecFacts] {
	problem := &flow.Forward[VecFacts]{
		Entry: entry,
		Meet:  vecMeet,
		Equal: vecEqual,
		Transfer: func(b *flow.Block, in VecFacts) VecFacts {
			out := in
			for _, nd := range b.Nodes {
				out = s.vecStep(info, out, nd)
			}
			return out
		},
	}
	return problem.Solve(g)
}

// VecFactsAt replays the bless lattice to just before node idx of b.
func (s *Set) VecFactsAt(info *types.Info, sol *flow.Solution[VecFacts], b *flow.Block, idx int) (VecFacts, bool) {
	in, ok := sol.In(b)
	if !ok {
		return nil, false
	}
	out := in
	for i := 0; i < idx && i < len(b.Nodes); i++ {
		out = s.vecStep(info, out, b.Nodes[i])
	}
	return out, true
}

// vecStep pushes the bless state through one CFG node.
func (s *Set) vecStep(info *types.Info, state VecFacts, n ast.Node) VecFacts {
	out := state
	cloned := false
	set := func(obj types.Object, ps PredSet) {
		if !cloned {
			out = out.clone()
			cloned = true
		}
		if ps == 0 {
			delete(out, obj)
		} else {
			out[obj] = ps
		}
	}
	bless := func(obj types.Object, ps PredSet) {
		if ps != 0 {
			set(obj, out[obj]|ps)
		}
	}
	kill := func(e ast.Expr) {
		if obj := vecIdent(info, e); obj != nil {
			set(obj, 0)
		}
	}
	flow.Inspect(n, func(nd ast.Node) bool {
		switch e := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			for arg, ps := range s.VectorAssertPreds(info, e) {
				if obj := vecIdent(info, arg); obj != nil {
					bless(obj, ps)
				}
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				kill(e.X)
			}
		case *ast.RangeStmt:
			kill(e.Key)
			if e.Value != nil {
				kill(e.Value)
			}
		case *ast.ValueSpec:
			for i, name := range e.Names {
				obj := info.Defs[name]
				if obj == nil || !isFloatSliceObj(obj) {
					continue
				}
				var ps PredSet
				if len(e.Values) == len(e.Names) {
					ps = s.vecExprPreds(info, out, e.Values[i], 0)
				}
				set(obj, ps)
			}
		case *ast.AssignStmt:
			for i, lhs := range e.Lhs {
				switch l := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					obj := info.Defs[l]
					if obj == nil {
						obj = info.Uses[l]
					}
					if obj == nil || !isFloatSliceObj(obj) {
						continue
					}
					var ps PredSet
					switch {
					case len(e.Rhs) == len(e.Lhs):
						ps = s.vecExprPreds(info, out, e.Rhs[i], 0)
					case len(e.Rhs) == 1:
						ps = s.vecExprPreds(info, out, e.Rhs[0], i)
					}
					set(obj, ps)
				case *ast.IndexExpr:
					kill(l.X)
				case *ast.StarExpr:
					kill(l.X)
				}
			}
		}
		return true
	})
	return out
}

// vecExprPreds returns the predicates provable for result resultIdx of
// a vector-producing expression: identifiers by bless state, nil
// vacuously, zeroed makes, normalize-named and ensures-carrying calls.
func (s *Set) vecExprPreds(info *types.Info, state VecFacts, e ast.Expr, resultIdx int) PredSet {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.IsNil() {
		// A nil vector satisfies every entrywise predicate vacuously;
		// the runtime shims skip nil results for the same reason.
		return ApplicableMask(true)
	}
	switch x := e.(type) {
	case *ast.Ident:
		if obj := info.Uses[x]; obj != nil {
			return state[obj]
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "make" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				if tv, ok := info.Types[x]; ok {
					if vector, shapeOK := predShape(tv.Type); shapeOK && vector {
						// Fresh zeros: entrywise in [0,1] and finite,
						// but summing to zero, never normalized.
						return UnitInterval.Set() | Finite.Set()
					}
				}
			}
		}
		return s.CallResultVectorPreds(info, x, resultIdx)
	case *ast.CompositeLit:
		return compositePreds(info, x)
	}
	return 0
}

// VecExprPreds is the exported single-result form of vecExprPreds, for
// analyzers judging argument expressions at call sites.
func (s *Set) VecExprPreds(info *types.Info, state VecFacts, e ast.Expr) PredSet {
	return s.vecExprPreds(info, state, e, 0)
}

// CallResultVectorPreds returns what a call promises of its resultIdx-th
// result vector: the callee's ensures, or the normalize-name heuristic
// the intraprocedural analyzers already trust.
func (s *Set) CallResultVectorPreds(info *types.Info, call *ast.CallExpr, resultIdx int) PredSet {
	fn := callgraph.StaticCallee(info, call)
	if fn == nil {
		return 0
	}
	var out PredSet
	if sum := s.Of(fn); sum != nil && resultIdx < len(sum.Ensures) {
		out = sum.Ensures[resultIdx] & ApplicableMask(true)
	}
	if strings.Contains(strings.ToLower(fn.Name()), "normali") {
		out |= Normalized.Set()
	}
	return out
}

// VectorAssertPreds returns, per argument expression, the vector
// predicates a call runtime-asserts: the internal/check conservation
// guards applied to every vector argument, normalize-named callees, and
// //numlint:asserts vector clauses.
func (s *Set) VectorAssertPreds(info *types.Info, call *ast.CallExpr) map[ast.Expr]PredSet {
	fn := callgraph.StaticCallee(info, call)
	if fn == nil {
		return nil
	}
	out := map[ast.Expr]PredSet{}
	broad := checkVectorAssert(fn)
	if strings.Contains(strings.ToLower(fn.Name()), "normali") {
		broad |= Normalized.Set()
	}
	if broad != 0 {
		for _, arg := range call.Args {
			if vecIdent(info, arg) != nil {
				out[arg] |= broad
			}
		}
	}
	if ct := s.Contracts[fn]; ct != nil {
		for _, cl := range ct.Asserts {
			if !cl.Vector {
				continue
			}
			if cl.Index < len(call.Args) && !(cl.Variadic && call.Ellipsis.IsValid()) {
				out[call.Args[cl.Index]] |= cl.Pred.Set()
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func compositePreds(info *types.Info, lit *ast.CompositeLit) PredSet {
	tv, ok := info.Types[lit]
	if !ok {
		return 0
	}
	if vector, shapeOK := predShape(tv.Type); !shapeOK || !vector {
		return 0
	}
	out := ApplicableMask(true) &^ Normalized.bit() // sums are not tracked
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			el = kv.Value
		}
		etv, ok := info.Types[el]
		if !ok || etv.Value == nil {
			return 0
		}
		out &= constPreds(etv.Value) | Normalized.bit()
	}
	return out & ApplicableMask(true)
}

func vecIdent(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil || !isFloatSliceObj(obj) {
		return nil
	}
	return obj
}

func isFloatSliceObj(obj types.Object) bool {
	vector, ok := predShape(obj.Type())
	return ok && vector
}

// inferProven recomputes the per-result proven predicates of one node:
// the intersection, over every reachable return site, of what the
// returned expressions provably satisfy there. No reachable returns
// (the function always panics or loops) leaves the optimistic top.
func (s *Set) inferProven(n *callgraph.Node) []PredSet {
	fn := n.Fn
	sig := fn.Type().(*types.Signature)
	results := sig.Results()
	out := make([]PredSet, results.Len())
	shapes := make([]bool, results.Len())
	interesting := false
	for i := 0; i < results.Len(); i++ {
		vector, ok := predShape(results.At(i).Type())
		if !ok {
			continue
		}
		shapes[i] = vector
		out[i] = ApplicableMask(vector)
		interesting = true
	}
	if !interesting {
		return out
	}
	info := n.Pkg.Info
	b := s.body(n)
	vecSol := s.vecSolve(n, b.g)
	for _, site := range b.g.Returns {
		idx := nodeIndex(site.Block, site.Stmt)
		facts, ok := flow.FactsAtOpt(info, b.sol, site.Block, idx, b.fopt)
		if !ok {
			continue
		}
		vstate, _ := s.VecFactsAt(info, vecSol, site.Block, idx)
		for i := range out {
			if _, ok := predShape(results.At(i).Type()); !ok {
				continue
			}
			out[i] &= s.returnPreds(n, site.Stmt, i, facts, vstate, shapes[i])
		}
	}
	return out
}

func nodeIndex(b *flow.Block, n ast.Node) int {
	for i, nd := range b.Nodes {
		if nd == n {
			return i
		}
	}
	return len(b.Nodes)
}

// returnPreds evaluates result index i of one return statement under
// the scalar facts and vector bless state holding just before it.
func (s *Set) returnPreds(n *callgraph.Node, ret *ast.ReturnStmt, i int, facts flow.Facts, vstate VecFacts, vector bool) PredSet {
	info := n.Pkg.Info
	sig := n.Fn.Type().(*types.Signature)
	switch {
	case len(ret.Results) == 0:
		// Naked return: the named result object carries the state.
		obj := namedResultObj(n, i)
		if obj == nil {
			return 0
		}
		if vector {
			return vstate[obj]
		}
		return FactsPreds(facts, obj)
	case len(ret.Results) == sig.Results().Len():
		if vector {
			return s.vecExprPreds(info, vstate, ret.Results[i], 0)
		}
		return s.ScalarExprPreds(info, facts, ret.Results[i])
	case len(ret.Results) == 1:
		// `return g(...)` forwarding a multi-result call.
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			if sum := s.Of(callgraph.StaticCallee(info, call)); sum != nil && i < len(sum.Ensures) {
				return sum.Ensures[i] & ApplicableMask(vector)
			}
		}
	}
	return 0
}

func namedResultObj(n *callgraph.Node, i int) types.Object {
	if n.Decl.Type.Results == nil {
		return nil
	}
	idx := 0
	for _, field := range n.Decl.Type.Results.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, name := range field.Names {
			if idx == i {
				return n.Pkg.Info.Defs[name]
			}
			idx++
		}
	}
	return nil
}

// inferRequires discovers the obligations a body imposes on its scalar
// float parameters: flowing unguarded into a division, a math.Log* or
// math.Sqrt, or a callee parameter with its own (declared or inferred)
// requires. Restricted to Options.InferBody functions so the analysis
// envelope matches naninf/divguard.
func (s *Set) inferRequires(n *callgraph.Node) []PredSet {
	sum := s.sums[n.Fn]
	out := make([]PredSet, len(sum.Requires))
	if s.opt.InferBody == nil || !s.opt.InferBody(n.Pkg, n.Decl) {
		return out
	}
	sig := n.Fn.Type().(*types.Signature)
	tracked := map[types.Object]int{}
	for i, obj := range paramObjs(n) {
		if obj == nil {
			continue
		}
		if sig.Variadic() && i == sig.Params().Len()-1 {
			continue
		}
		if vector, ok := predShape(obj.Type()); ok && !vector {
			tracked[obj] = i
		}
	}
	if len(tracked) == 0 {
		return out
	}
	b := s.body(n)
	info := n.Pkg.Info
	for _, blk := range b.g.Blocks {
		for idx, nd := range blk.Nodes {
			facts, ok := flow.FactsAtOpt(info, b.sol, blk, idx, b.fopt)
			if !ok {
				continue
			}
			s.obligations(info, tracked, nd, facts, out)
		}
	}
	return out
}

// obligations walks one CFG node under its entry facts, refining
// through short-circuit operators exactly like divguard does.
func (s *Set) obligations(info *types.Info, tracked map[types.Object]int, node ast.Node, facts flow.Facts, out []PredSet) {
	need := func(e ast.Expr, p Pred) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Uses[id]
		if obj == nil {
			return
		}
		i, ok := tracked[obj]
		if !ok || facts.Has(obj, mustFlowPred(p)) {
			return
		}
		out[i] |= p.Set()
	}
	flow.Inspect(node, func(nd ast.Node) bool {
		switch e := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			if e.Op == token.LAND || e.Op == token.LOR {
				s.obligations(info, tracked, e.X, facts, out)
				refined := flow.Facts{}
				for f := range facts {
					refined[f] = true
				}
				for f := range flow.CondFacts(info, e.X, e.Op == token.LAND) {
					refined[f] = true
				}
				s.obligations(info, tracked, e.Y, refined, out)
				return false
			}
			if e.Op == token.QUO && constVal(info, e.Y) == nil &&
				(isFloatExpr(info, e.X) || isFloatExpr(info, e.Y)) {
				need(e.Y, NonZero)
			}
		case *ast.CallExpr:
			if p, ok := mathObligation(info, e); ok && len(e.Args) == 1 && constVal(info, e.Args[0]) == nil {
				need(e.Args[0], p)
			}
			if sum := s.Of(callgraph.StaticCallee(info, e)); sum != nil && !e.Ellipsis.IsValid() {
				for j := 0; j < len(sum.Requires) && j < len(e.Args); j++ {
					ps := (sum.Requires[j] | sum.InferredRequires[j]) & StaticMask(false)
					for _, p := range ps.Preds() {
						if !s.ScalarExprPreds(info, facts, e.Args[j]).Has(p) {
							need(e.Args[j], p)
						}
					}
				}
			}
		}
		return true
	})
}

// mustFlowPred maps a statically checkable scalar pred to its flow
// twin; only called for the three guard predicates.
func mustFlowPred(p Pred) flow.Pred {
	switch p {
	case Positive:
		return flow.Positive
	case NonZero:
		return flow.NonZero
	default:
		return flow.NonNegative
	}
}

func mathObligation(info *types.Info, call *ast.CallExpr) (Pred, bool) {
	fn := callgraph.StaticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math" {
		return 0, false
	}
	switch fn.Name() {
	case "Log", "Log2", "Log10":
		return Positive, true
	case "Sqrt":
		return NonNegative, true
	}
	return 0, false
}

func constVal(info *types.Info, e ast.Expr) constant.Value {
	if tv, ok := info.Types[e]; ok {
		return tv.Value
	}
	return nil
}

func isFloatExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isFloatType(tv.Type)
}

// computeContexts fills Summary.Context: for every trusted function,
// the meet over all visible call sites of the facts the caller had
// already established for each scalar argument. Caller facts are
// computed under the caller's declared requires only, so context can
// never support itself through recursion.
func (s *Set) computeContexts() {
	nodes := make([]*callgraph.Node, 0, len(s.sums))
	for _, sum := range s.sums {
		nodes = append(nodes, sum.Node)
	}
	sort.Slice(nodes, func(i, j int) bool {
		a, b := nodes[i], nodes[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})
	for _, n := range nodes {
		sum := s.sums[n.Fn]
		if len(sum.Context) == 0 || !trusted(n) || len(n.In) == 0 {
			continue
		}
		sig := n.Fn.Type().(*types.Signature)
		acc := make([]PredSet, len(sum.Context))
		for i := range acc {
			acc[i] = StaticMask(false)
		}
		contributed := false
		for _, e := range n.In {
			if e.InLit {
				// The call runs under unknown facts — drains everything.
				for i := range acc {
					acc[i] = 0
				}
				contributed = true
				break
			}
			cb := s.body(e.Caller)
			at, ok := cb.sites[e.Site]
			if !ok {
				continue
			}
			facts, ok := flow.FactsAtOpt(e.Caller.Pkg.Info, cb.sol, at.b, at.idx, cb.fopt)
			if !ok {
				continue // unreachable call site never runs
			}
			contributed = true
			for i := range acc {
				if sig.Variadic() && i == len(acc)-1 {
					acc[i] = 0
					continue
				}
				if i >= len(e.Site.Args) {
					acc[i] = 0
					continue
				}
				if vector, ok := predShape(sig.Params().At(i).Type()); !ok || vector {
					acc[i] = 0
					continue
				}
				acc[i] &= s.ScalarExprPreds(e.Caller.Pkg.Info, facts, e.Site.Args[i]) & StaticMask(false)
			}
		}
		if contributed {
			copy(sum.Context, acc)
		}
	}
}

// trusted reports whether every call of n is visible as a graph edge:
// not address-taken (no indirect calls), not a method (interface
// dispatch is invisible), and not callable from outside the loaded
// module (unexported, or in an internal/ package). Note a subset load
// (numlint -pkgs) can still hide same-module callers — whole-module
// runs, which CI performs, see them all.
func trusted(n *callgraph.Node) bool {
	if n.Decl == nil || n.AddressTaken {
		return false
	}
	if n.Fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	if !n.Fn.Exported() {
		return true
	}
	path := n.Pkg.Path
	return strings.Contains(path, "/internal/") || strings.HasPrefix(path, "internal/")
}

// AnalyzerBody is the per-function view the analyzers consume: the CFG
// plus both lattices solved under the full interprocedural entry state
// (declared requires AND call-site context).
type AnalyzerBody struct {
	Graph *flow.Graph
	Opt   flow.Options
	Scal  *flow.Solution[flow.Facts]
	Vec   *flow.Solution[VecFacts]
	set   *Set
	info  *types.Info
}

// AnalyzerBody builds (uncached — cache on the caller's side if reused
// across analyzers) the interprocedural view of a declared node.
func (s *Set) AnalyzerBody(n *callgraph.Node) *AnalyzerBody {
	g := flow.New(n.Decl.Body)
	opt := flow.Options{
		Entry:   s.entryFacts(n, true),
		Asserts: s.AssertFacts(n.Pkg.Info),
	}
	return &AnalyzerBody{
		Graph: g,
		Opt:   opt,
		Scal:  flow.GuardFactsOpt(n.Pkg.Info, g, opt),
		Vec:   s.vecSolve(n, g),
		set:   s,
		info:  n.Pkg.Info,
	}
}

// LitBody is AnalyzerBody for a function literal: a separate frame with
// no contract, so both lattices start empty, but assertion calls and
// callee summaries still apply inside.
func (s *Set) LitBody(info *types.Info, lit *ast.FuncLit) *AnalyzerBody {
	g := flow.New(lit.Body)
	opt := flow.Options{Asserts: s.AssertFacts(info)}
	return &AnalyzerBody{
		Graph: g,
		Opt:   opt,
		Scal:  flow.GuardFactsOpt(info, g, opt),
		Vec:   s.vecSolveWith(info, VecFacts{}, g),
		set:   s,
		info:  info,
	}
}

// FactsAt returns the scalar facts just before node idx of b.
func (ab *AnalyzerBody) FactsAt(b *flow.Block, idx int) (flow.Facts, bool) {
	return flow.FactsAtOpt(ab.info, ab.Scal, b, idx, ab.Opt)
}

// VecAt returns the vector bless state just before node idx of b.
func (ab *AnalyzerBody) VecAt(b *flow.Block, idx int) (VecFacts, bool) {
	return ab.set.VecFactsAt(ab.info, ab.Vec, b, idx)
}
