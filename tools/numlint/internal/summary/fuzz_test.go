package summary

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseContract exercises the contract-directive grammar with
// arbitrary comment lines. ParseDirective must never panic, must never
// return both a directive and an error, and every accepted directive
// must survive a render/reparse round trip unchanged.
func FuzzParseContract(f *testing.F) {
	f.Add("//numlint:requires positive(lambda), nonzero(d)")
	f.Add("//numlint:ensures normalized")
	f.Add("//numlint:ensures unitinterval(cdf), finite(cdf)")
	f.Add("//numlint:asserts nonnegative(xs)")
	f.Add("//numlint:requires positiv(x)")
	f.Add("//numlint:requires positive(x")
	f.Add("//numlint:requires positive()")
	f.Add("//numlint:requires")
	f.Add("//numlint:ignore floatcmp tolerance test")
	f.Add("// plain prose mentioning numlint:ensures in passing")
	f.Add("//numlint:ensures normalized, normalized")
	f.Fuzz(func(t *testing.T, line string) {
		d, err := ParseDirective(line)
		if d != nil && err != nil {
			t.Fatalf("ParseDirective(%q) returned both a directive and error %v", line, err)
		}
		if d == nil {
			return
		}
		if len(d.Clauses) == 0 {
			t.Fatalf("ParseDirective(%q) accepted a directive with no clauses", line)
		}
		var items []string
		for _, cl := range d.Clauses {
			if cl.Pred >= numPreds {
				t.Fatalf("ParseDirective(%q) produced out-of-range predicate %d", line, cl.Pred)
			}
			if cl.Target == "" {
				if d.Kind != KindEnsures {
					t.Fatalf("ParseDirective(%q) accepted a targetless %s clause", line, d.Kind)
				}
				items = append(items, cl.Pred.String())
				continue
			}
			if !validIdent(cl.Target) {
				t.Fatalf("ParseDirective(%q) accepted non-identifier target %q", line, cl.Target)
			}
			items = append(items, fmt.Sprintf("%s(%s)", cl.Pred, cl.Target))
		}
		canon := "//numlint:" + d.Kind.String() + " " + strings.Join(items, ", ")
		d2, err2 := ParseDirective(canon)
		if err2 != nil || d2 == nil {
			t.Fatalf("canonical form %q of %q failed to reparse: %v", canon, line, err2)
		}
		if !reflect.DeepEqual(d, d2) {
			t.Fatalf("round trip changed the directive:\n  in    %q -> %+v\n  canon %q -> %+v", line, d, canon, d2)
		}
	})
}
