// Package summary computes interprocedural per-function summaries for
// numlint: the numeric contract each function declares (via
// //numlint:requires, //numlint:ensures, and //numlint:asserts
// directives), the return guarantees its body provably establishes, the
// obligations its body imposes on parameters, and the facts every
// visible call site happens to discharge. Summaries are propagated
// bottom-up over the call graph's strongly connected components to a
// fixed point, so guarantees flow through call chains and recursion.
package summary

import (
	"fmt"
	"strings"
	"unicode"
)

// Pred is one contract predicate. Predicates apply to float64 scalars
// or []float64 vectors depending on the target's type (see AppliesTo):
// for a vector, nonnegative/unitinterval/finite hold entrywise and
// normalized additionally requires the entries to sum to one.
type Pred uint8

const (
	// Positive: strictly greater than zero (scalar only).
	Positive Pred = iota
	// NonZero: not equal to zero (scalar only).
	NonZero
	// NonNegative: greater than or equal to zero.
	NonNegative
	// Finite: neither NaN nor ±Inf. Never statically checkable; finite
	// clauses exist for the generated runtime shims.
	Finite
	// UnitInterval: within [0, 1].
	UnitInterval
	// Normalized: a probability vector — entries in [0, 1] summing to
	// one (vector only).
	Normalized

	numPreds
)

var predNames = [numPreds]string{
	Positive:     "positive",
	NonZero:      "nonzero",
	NonNegative:  "nonnegative",
	Finite:       "finite",
	UnitInterval: "unitinterval",
	Normalized:   "normalized",
}

func (p Pred) String() string {
	if p < numPreds {
		return predNames[p]
	}
	return "unknown"
}

// ParsePred resolves a predicate name from the directive grammar.
func ParsePred(name string) (Pred, bool) {
	for p, n := range predNames {
		if n == name {
			return Pred(p), true
		}
	}
	return 0, false
}

// PredSet is a bit set of predicates, kept closed under implication:
// positive ⇒ nonzero, nonnegative; normalized ⇒ unitinterval ⇒
// nonnegative. Build sets with Pred.Set (never raw shifts) so the
// closure invariant holds; union and intersection preserve it.
type PredSet uint8

func (p Pred) bit() PredSet { return 1 << p }

// Set returns the singleton set of p closed under implication.
func (p Pred) Set() PredSet {
	switch p {
	case Positive:
		return Positive.bit() | NonZero.bit() | NonNegative.bit()
	case Normalized:
		return Normalized.bit() | UnitInterval.bit() | NonNegative.bit()
	case UnitInterval:
		return UnitInterval.bit() | NonNegative.bit()
	default:
		return p.bit()
	}
}

// Has reports whether the set establishes p (implications are already
// materialized by the closure invariant).
func (s PredSet) Has(p Pred) bool { return s&p.bit() != 0 }

// Preds returns the members in declaration order.
func (s PredSet) Preds() []Pred {
	var out []Pred
	for p := Pred(0); p < numPreds; p++ {
		if s.Has(p) {
			out = append(out, p)
		}
	}
	return out
}

func (s PredSet) String() string {
	if s == 0 {
		return "none"
	}
	names := make([]string, 0, numPreds)
	for _, p := range s.Preds() {
		names = append(names, p.String())
	}
	return strings.Join(names, ",")
}

// AppliesTo reports whether the predicate is meaningful for a target of
// the given shape (vector = []float64, scalar = float64).
func (p Pred) AppliesTo(vector bool) bool {
	if vector {
		return p == NonNegative || p == UnitInterval || p == Normalized || p == Finite
	}
	return p != Normalized
}

// StaticallyCheckable reports whether the static lattices can discharge
// the predicate for the given shape: the scalar guard lattice proves
// positive/nonzero/nonnegative, the vector bless lattice proves
// nonnegative/unitinterval/normalized. finite (and unitinterval on a
// scalar) are runtime-only — the generated shims check them, the
// contract analyzer does not.
func (p Pred) StaticallyCheckable(vector bool) bool {
	if vector {
		return p == NonNegative || p == UnitInterval || p == Normalized
	}
	return p == Positive || p == NonZero || p == NonNegative
}

// ApplicableMask is the set of all predicates applicable to the shape.
func ApplicableMask(vector bool) PredSet {
	var out PredSet
	for p := Pred(0); p < numPreds; p++ {
		if p.AppliesTo(vector) {
			out |= p.Set()
		}
	}
	return out
}

// StaticMask is the set of statically checkable predicates for the
// shape.
func StaticMask(vector bool) PredSet {
	var out PredSet
	for p := Pred(0); p < numPreds; p++ {
		if p.StaticallyCheckable(vector) {
			out |= p.bit()
		}
	}
	return out
}

// Kind distinguishes the three contract directives.
type Kind uint8

const (
	// KindRequires: the caller must establish the clause before calling.
	KindRequires Kind = iota
	// KindEnsures: the function establishes the clause for its result on
	// every (non-nil, for vectors) return.
	KindEnsures
	// KindAsserts: the function runtime-panics unless the clause holds
	// of its argument, so after a call returns the clause is a fact.
	KindAsserts
)

func (k Kind) String() string {
	switch k {
	case KindRequires:
		return "requires"
	case KindEnsures:
		return "ensures"
	case KindAsserts:
		return "asserts"
	}
	return "unknown"
}

// RawClause is one parsed `pred` or `pred(target)` clause, before
// resolution against a signature.
type RawClause struct {
	Pred Pred
	// Target names a parameter (requires/asserts) or a named result
	// (ensures); empty only for ensures, meaning the default result.
	Target string
}

// Directive is one parsed contract comment line.
type Directive struct {
	Kind    Kind
	Clauses []RawClause
}

// ParseDirective parses one comment line of the contract grammar:
//
//	//numlint:requires positive(lambda), nonzero(d)
//	//numlint:ensures normalized
//	//numlint:asserts nonnegative(xs)
//
// Clauses are comma-separated; each is a predicate name optionally
// applied to an identifier. requires and asserts clauses must name a
// parameter; an ensures clause may omit the target to mean the
// function's (sole float-typed) result. The line must contain nothing
// else — prose explaining the contract belongs on neighbouring doc
// lines.
//
// Lines that are not contract directives at all (including every other
// //numlint: directive) return (nil, nil); malformed contract
// directives return an error.
func ParseDirective(line string) (*Directive, error) {
	s := strings.TrimSpace(line)
	s = strings.TrimPrefix(s, "//")
	s = strings.TrimSpace(s)
	const prefix = "numlint:"
	if !strings.HasPrefix(s, prefix) {
		return nil, nil
	}
	rest := s[len(prefix):]
	word := rest
	if i := strings.IndexFunc(rest, unicode.IsSpace); i >= 0 {
		word, rest = rest[:i], rest[i:]
	} else {
		rest = ""
	}
	var kind Kind
	switch word {
	case "requires":
		kind = KindRequires
	case "ensures":
		kind = KindEnsures
	case "asserts":
		kind = KindAsserts
	default:
		return nil, nil // some other numlint directive
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return nil, fmt.Errorf("numlint:%s needs at least one clause", kind)
	}
	d := &Directive{Kind: kind}
	for _, item := range strings.Split(rest, ",") {
		cl, err := parseClause(kind, strings.TrimSpace(item))
		if err != nil {
			return nil, err
		}
		d.Clauses = append(d.Clauses, cl)
	}
	return d, nil
}

func parseClause(kind Kind, item string) (RawClause, error) {
	if item == "" {
		return RawClause{}, fmt.Errorf("empty clause in numlint:%s", kind)
	}
	name, target := item, ""
	if i := strings.IndexByte(item, '('); i >= 0 {
		if !strings.HasSuffix(item, ")") {
			return RawClause{}, fmt.Errorf("unclosed target in clause %q", item)
		}
		name = strings.TrimSpace(item[:i])
		target = strings.TrimSpace(item[i+1 : len(item)-1])
		if !validIdent(target) {
			return RawClause{}, fmt.Errorf("clause %q: target must be an identifier", item)
		}
	}
	pred, ok := ParsePred(name)
	if !ok {
		return RawClause{}, fmt.Errorf("unknown predicate %q (want one of %s)", name, knownPreds())
	}
	if target == "" && kind != KindEnsures {
		return RawClause{}, fmt.Errorf("numlint:%s clause %q must name a parameter, e.g. %s(x)", kind, item, pred)
	}
	return RawClause{Pred: pred, Target: target}, nil
}

func knownPreds() string {
	return strings.Join(predNames[:], ", ")
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if unicode.IsLetter(r) || r == '_' || (i > 0 && unicode.IsDigit(r)) {
			continue
		}
		return false
	}
	return true
}
