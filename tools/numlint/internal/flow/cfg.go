// Package flow is the dataflow core of the numlint analysis suite: a
// per-function control-flow graph built from go/ast, a generic forward
// worklist solver, and a guarded-fact lattice derived from branch
// conditions. The PR-1 analyzers matched syntax per expression; the
// flow-based analyzers (divguard, probconserve, ctxflow, sharedcapture,
// hotalloc) reason about *paths*: a guard only counts where it
// dominates the guarded operation.
//
// Like the rest of numlint, the package is stdlib-only — it mirrors the
// useful subset of golang.org/x/tools/go/cfg without the dependency.
package flow

import (
	"go/ast"
	"go/token"
)

// Block is a straight-line sequence of statements with no internal
// control transfer. Nodes holds the statements (and branch condition
// expressions) in execution order.
type Block struct {
	// Index is the block's position in Graph.Blocks; Entry is 0.
	Index int
	// Nodes are the statements and control expressions executed in
	// order when the block runs.
	Nodes []ast.Node
	// Succs and Preds are the outgoing and incoming edges.
	Succs []*Edge
	Preds []*Edge
}

// Edge is one control transfer. When Cond is non-nil the edge is taken
// exactly when Cond evaluates to Branch, which lets analyses attach
// condition-derived facts to the destination.
type Edge struct {
	From, To *Block
	Cond     ast.Expr
	Branch   bool
}

// Graph is the control-flow graph of one function body. Exit is a
// synthetic block: every return, panic, or fall-off-the-end transfers
// there. Function literals nested in the body are *not* expanded —
// their bodies get their own Graph when an analysis needs one.
type Graph struct {
	Entry *Block
	Exit  *Block
	// Blocks lists every block, Entry first, Exit last.
	Blocks []*Block
	// Returns are the explicit return statements, each paired with the
	// block that executes it.
	Returns []ReturnSite
	// Defers are the defer statements in lexical order; they run (in
	// reverse order) on every path into Exit.
	Defers []*ast.DeferStmt
	// Panics are the blocks that transfer to Exit through a terminating
	// call (panic, os.Exit, ...) rather than a return or fall-off.
	Panics []*Block
}

// ReturnSite is one explicit return statement and its enclosing block.
type ReturnSite struct {
	Stmt  *ast.ReturnStmt
	Block *Block
}

// Inspect walks one CFG block node the way ast.Inspect would, except
// that a *ast.RangeStmt — which a loop-head block stores to represent
// its range-expression evaluation and key/value assignment — only
// contributes those header parts. The range body lives in its own
// blocks; descending into it from the head node would replay body
// statements against the head's dataflow state. Analyzers walking
// Block.Nodes must use this instead of ast.Inspect.
func Inspect(n ast.Node, f func(ast.Node) bool) {
	r, ok := n.(*ast.RangeStmt)
	if !ok {
		ast.Inspect(n, f)
		return
	}
	if !f(r) {
		return
	}
	if r.Key != nil {
		ast.Inspect(r.Key, f)
	}
	if r.Value != nil {
		ast.Inspect(r.Value, f)
	}
	ast.Inspect(r.X, f)
}

// New builds the control-flow graph for a function body. A nil body
// (declaration without definition) yields a graph with only Entry and
// Exit connected.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = &Block{Index: -1} // re-indexed in finish
	cur := b.g.Entry
	if body != nil {
		cur = b.stmtList(body.List, cur)
	}
	if cur != nil {
		b.edge(cur, b.g.Exit, nil, false)
	}
	b.finish()
	return b.g
}

type loopFrame struct {
	label string
	brk   *Block // break target (loop/switch join)
	cont  *Block // continue target; nil inside switch/select
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g      *Graph
	frames []loopFrame
	labels map[string]*Block
	gotos  []pendingGoto
	// nextLabel is set when a LabeledStmt is being built, so the inner
	// loop/switch registers the label as its own break/continue frame.
	nextLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block, cond ast.Expr, branch bool) {
	e := &Edge{From: from, To: to, Cond: cond, Branch: branch}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// finish appends Exit to Blocks and resolves pending gotos. A goto to a
// label the builder never saw (malformed input) falls through to Exit
// so the graph stays well formed.
func (b *builder) finish() {
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	for _, pg := range b.gotos {
		to := b.labels[pg.label]
		if to == nil {
			to = b.g.Exit
		}
		b.edge(pg.from, to, nil, false)
	}
}

// stmtList builds a statement sequence starting in cur and returns the
// block where control continues, or nil when every path terminated.
// Statements after a terminator still get (unreachable) blocks so every
// AST node appears in exactly one block.
func (b *builder) stmtList(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		if cur == nil {
			cur = b.newBlock() // unreachable: no predecessors
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

func (b *builder) stmt(s ast.Stmt, cur *Block) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.LabeledStmt:
		// Start a fresh block so backward gotos and labeled
		// break/continue have a join point to target.
		head := b.newBlock()
		b.edge(cur, head, nil, false)
		if b.labels == nil {
			b.labels = map[string]*Block{}
		}
		b.labels[s.Label.Name] = head
		b.nextLabel = s.Label.Name
		next := b.stmt(s.Stmt, head)
		b.nextLabel = ""
		return next

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.g.Returns = append(b.g.Returns, ReturnSite{Stmt: s, Block: cur})
		b.edge(cur, b.g.Exit, nil, false)
		return nil

	case *ast.BranchStmt:
		cur.Nodes = append(cur.Nodes, s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.breakTarget(label); t != nil {
				b.edge(cur, t, nil, false)
			}
		case token.CONTINUE:
			if t := b.continueTarget(label); t != nil {
				b.edge(cur, t, nil, false)
			}
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: cur, label: label})
		case token.FALLTHROUGH:
			// Handled by the switch builder: the case body's trailing
			// block is linked to the next clause there. Mark the block
			// as continuing so switchStmt sees a live tail.
			return cur
		}
		return nil

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		join := b.newBlock()
		then := b.newBlock()
		b.edge(cur, then, s.Cond, true)
		if end := b.stmtList(s.Body.List, then); end != nil {
			b.edge(end, join, nil, false)
		}
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cur, els, s.Cond, false)
			if end := b.stmt(s.Else, els); end != nil {
				b.edge(end, join, nil, false)
			}
		} else {
			b.edge(cur, join, s.Cond, false)
		}
		if len(join.Preds) == 0 {
			return nil
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		head := b.newBlock()
		b.edge(cur, head, nil, false)
		join := b.newBlock()
		body := b.newBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.edge(head, body, s.Cond, true)
			b.edge(head, join, s.Cond, false)
		} else {
			b.edge(head, body, nil, false)
		}
		// continue targets the post statement when there is one, so the
		// post block is built first and the body linked to it.
		contTarget := head
		if s.Post != nil {
			post := b.newBlock()
			end := b.stmt(s.Post, post)
			b.edge(end, head, nil, false)
			contTarget = post
		}
		b.pushFrame(join, contTarget)
		if end := b.stmtList(s.Body.List, body); end != nil {
			b.edge(end, contTarget, nil, false)
		}
		b.popFrame()
		if s.Cond == nil && len(join.Preds) == 0 {
			return nil // for{} with no break never falls through
		}
		return join

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(cur, head, nil, false)
		head.Nodes = append(head.Nodes, s)
		join := b.newBlock()
		body := b.newBlock()
		b.edge(head, body, nil, false)
		b.edge(head, join, nil, false)
		b.pushFrame(join, head)
		if end := b.stmtList(s.Body.List, body); end != nil {
			b.edge(end, head, nil, false)
		}
		b.popFrame()
		return join

	case *ast.SwitchStmt:
		return b.switchStmt(s.Init, s.Tag, nil, s.Body, cur)

	case *ast.TypeSwitchStmt:
		return b.switchStmt(s.Init, nil, s.Assign, s.Body, cur)

	case *ast.SelectStmt:
		return b.selectStmt(s, cur)

	case *ast.DeferStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.g.Defers = append(b.g.Defers, s)
		return cur

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminatingCall(call) {
			b.g.Panics = append(b.g.Panics, cur)
			b.edge(cur, b.g.Exit, nil, false)
			return nil
		}
		return cur

	case *ast.EmptyStmt:
		return cur

	default:
		// Assign, IncDec, Decl, Send, Go: straight-line.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// switchStmt builds expression and type switches. tag is the switch tag
// (nil for tagless and type switches); assign is the type-switch assign
// statement.
func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, cur *Block) *Block {
	if init != nil {
		cur = b.stmt(init, cur)
	}
	if tag != nil {
		cur.Nodes = append(cur.Nodes, tag)
	}
	if assign != nil {
		cur.Nodes = append(cur.Nodes, assign)
	}
	join := b.newBlock()
	b.pushFrame(join, nil)
	clauses := body.List
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		blocks[i] = b.newBlock()
	}
	for i, clause := range clauses {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		// In a tagless switch a single-expression case behaves like an
		// if-condition: the clause body runs exactly when it is true.
		var cond ast.Expr
		if tag == nil && assign == nil && len(cc.List) == 1 {
			cond = cc.List[0]
			cur.Nodes = append(cur.Nodes, cond)
		}
		b.edge(cur, blocks[i], cond, true)
		end := b.stmtList(cc.Body, blocks[i])
		if end != nil {
			if ft := fallsThrough(cc.Body); ft && i+1 < len(clauses) {
				b.edge(end, blocks[i+1], nil, false)
			} else {
				b.edge(end, join, nil, false)
			}
		}
	}
	if !hasDefault {
		b.edge(cur, join, nil, false)
	}
	b.popFrame()
	if len(join.Preds) == 0 {
		return nil
	}
	return join
}

// selectStmt builds a select statement. Each communication clause gets
// its own body block reached by an edge from the head: the comm
// operation (receive assignment or send) is the first node of its case
// body, so facts killed or established by `v := <-ch` stay scoped to
// that case. A default clause is an ordinary extra successor — with one
// present the select never blocks, without one control can only leave
// through a case, and an empty select blocks forever (join unreachable,
// like `for {}`). break (and labeled break, via the frame stack)
// targets the join.
func (b *builder) selectStmt(s *ast.SelectStmt, cur *Block) *Block {
	if len(s.Body.List) == 0 {
		// select{} blocks forever; keep the statement in the block so
		// every AST node appears exactly once, but add no out-edge.
		cur.Nodes = append(cur.Nodes, s)
		return nil
	}
	join := b.newBlock()
	b.pushFrame(join, nil)
	for _, clause := range s.Body.List {
		cc := clause.(*ast.CommClause)
		body := b.newBlock()
		b.edge(cur, body, nil, false)
		if cc.Comm != nil {
			body.Nodes = append(body.Nodes, cc.Comm)
		}
		if end := b.stmtList(cc.Body, body); end != nil {
			b.edge(end, join, nil, false)
		}
	}
	b.popFrame()
	if len(join.Preds) == 0 {
		return nil
	}
	return join
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *builder) pushFrame(brk, cont *Block) {
	b.frames = append(b.frames, loopFrame{label: b.nextLabel, brk: brk, cont: cont})
	b.nextLabel = ""
}

func (b *builder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

func (b *builder) breakTarget(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		if label == "" || b.frames[i].label == label {
			return b.frames[i].brk
		}
	}
	return nil
}

func (b *builder) continueTarget(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		if b.frames[i].cont == nil {
			continue // switch/select frames cannot be continued
		}
		if label == "" || b.frames[i].label == label {
			return b.frames[i].cont
		}
	}
	return nil
}

// isTerminatingCall recognises calls that never return: panic and the
// handful of stdlib terminators that matter for analysis precision.
func isTerminatingCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}
