package flow

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheck parses and type-checks one source file.
func typecheck(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, f, info
}

// graphFor builds the CFG of the named function.
func graphFor(t *testing.T, f *ast.File, name string) *Graph {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return New(fd.Body)
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

// probeFacts locates every `probe(x)` call in the solved graph and
// returns the facts holding for x at each call, keyed by the probe's
// string literal tag when present: probe(x, "tag").
func probeFacts(t *testing.T, info *types.Info, g *Graph) map[string]struct {
	Obj   types.Object
	Facts Facts
	Live  bool
} {
	t.Helper()
	sol := GuardFacts(info, g)
	out := map[string]struct {
		Obj   types.Object
		Facts Facts
		Live  bool
	}{}
	n := 0
	for _, b := range g.Blocks {
		for idx, node := range b.Nodes {
			ast.Inspect(node, func(nd ast.Node) bool {
				call, ok := nd.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "probe" || len(call.Args) == 0 {
					return true
				}
				arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
				if !ok {
					t.Fatalf("probe arg must be an identifier")
				}
				tag := fmt.Sprintf("#%d", n)
				n++
				if len(call.Args) > 1 {
					if lit, ok := call.Args[1].(*ast.BasicLit); ok {
						tag = lit.Value[1 : len(lit.Value)-1]
					}
				}
				facts, live := FactsAt(info, sol, b, idx)
				out[tag] = struct {
					Obj   types.Object
					Facts Facts
					Live  bool
				}{info.Uses[arg], facts, live}
				return true
			})
		}
	}
	return out
}

const factSrc = `package p

func probe(x float64, tag ...string) {}

func branches(x float64) float64 {
	if x > 0 {
		probe(x, "then")
	} else {
		probe(x, "else")
	}
	probe(x, "join")
	if x == 0 {
		return 0
	}
	probe(x, "after-guard")
	return 1 / x
}

func shortCircuit(a, b float64) {
	if a > 0 && b != 0 {
		probe(a, "and-a")
		probe(b, "and-b")
	}
	if a <= 0 || b == 0 {
		probe(a, "or-then")
		return
	}
	probe(a, "or-else-a")
	probe(b, "or-else-b")
}

func negation(x float64) {
	if !(x <= 0) {
		probe(x, "not")
	}
}

func loops(x float64) {
	for x > 0 {
		probe(x, "loop-body")
		x = x - 1
	}
	probe(x, "loop-exit")
	for i := 0; i < 10; i++ {
		if x == 0 {
			continue
		}
		probe(x, "loop-guarded")
	}
}

func killed(x float64) {
	if x > 0 {
		probe(x, "before-kill")
		x = -1
		probe(x, "after-kill")
	}
}

func tagless(x float64) {
	switch {
	case x > 0:
		probe(x, "case-pos")
	default:
		probe(x, "case-default")
	}
}

func earlyReturn(x float64) float64 {
	if x <= 0 {
		return 0
	}
	probe(x, "post-early-return")
	return 1 / x
}

func unreachable(x float64) {
	return
	probe(x, "dead") //nolint
}
`

func TestGuardFacts(t *testing.T) {
	_, f, info := typecheck(t, factSrc)
	cases := []struct {
		fn, tag string
		pred    Pred
		want    bool
	}{
		{"branches", "then", Positive, true},
		{"branches", "then", NonZero, true}, // implication
		{"branches", "else", Positive, false},
		{"branches", "join", Positive, false}, // meet over both branches
		{"branches", "after-guard", NonZero, true},
		{"branches", "after-guard", Positive, false},
		{"shortCircuit", "and-a", Positive, true},
		{"shortCircuit", "and-b", NonZero, true},
		{"shortCircuit", "or-then", Positive, false},
		{"shortCircuit", "or-else-a", Positive, true}, // !(a<=0)
		{"shortCircuit", "or-else-b", NonZero, true},  // !(b==0)
		{"negation", "not", Positive, true},
		{"loops", "loop-body", Positive, true},
		{"loops", "loop-exit", Positive, false},
		{"loops", "loop-guarded", NonZero, true}, // continue-guard dominates
		{"killed", "before-kill", Positive, true},
		{"killed", "after-kill", Positive, false},
		{"tagless", "case-pos", Positive, true},
		{"tagless", "case-default", Positive, false},
		{"earlyReturn", "post-early-return", Positive, true},
	}
	graphs := map[string]map[string]struct {
		Obj   types.Object
		Facts Facts
		Live  bool
	}{}
	for _, c := range cases {
		probes, ok := graphs[c.fn]
		if !ok {
			probes = probeFacts(t, info, graphFor(t, f, c.fn))
			graphs[c.fn] = probes
		}
		p, ok := probes[c.tag]
		if !ok {
			t.Errorf("%s: no probe %q", c.fn, c.tag)
			continue
		}
		if !p.Live {
			t.Errorf("%s/%s: probe unreachable", c.fn, c.tag)
			continue
		}
		if got := p.Facts.Has(p.Obj, c.pred); got != c.want {
			t.Errorf("%s/%s: Has(%s, %v) = %v, want %v (facts %v)",
				c.fn, c.tag, p.Obj.Name(), c.pred, got, c.want, p.Facts)
		}
	}
}

func TestUnreachableBlock(t *testing.T) {
	_, f, info := typecheck(t, factSrc)
	probes := probeFacts(t, info, graphFor(t, f, "unreachable"))
	p, ok := probes["dead"]
	if !ok {
		t.Fatal("no probe \"dead\"")
	}
	if p.Live {
		t.Error("statement after return reported reachable")
	}
}

const cfgSrc = `package p

import "sync"

func simple() int {
	x := 1
	return x
}

func twoReturns(c bool) int {
	if c {
		return 1
	}
	return 2
}

func deferred(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	if mu == nil {
		return
	}
}

func switchFall(x int) int {
	switch x {
	case 0:
		x++
		fallthrough
	case 1:
		return x
	}
	return -1
}

func forever() {
	for {
	}
}

func panics(c bool) int {
	if c {
		panic("no")
	}
	return 1
}

func labeled() int {
	n := 0
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == 2 {
				continue outer
			}
			if i == 2 {
				break outer
			}
			n++
		}
	}
	return n
}

func gotos(x int) int {
	if x > 0 {
		goto done
	}
	x = -x
done:
	return x
}

func selects(ch chan int, done chan struct{}) int {
	select {
	case v := <-ch:
		return v
	case <-done:
		return 0
	}
}
`

func TestCFGStructure(t *testing.T) {
	_, f, _ := typecheck(t, cfgSrc)
	cases := []struct {
		fn      string
		returns int
		defers  int
		// exitReachable: the synthetic Exit has at least one predecessor.
		exitReachable bool
	}{
		{"simple", 1, 0, true},
		{"twoReturns", 2, 0, true},
		{"deferred", 1, 1, true},
		{"switchFall", 2, 0, true},
		{"forever", 0, 0, false},
		{"panics", 1, 0, true},
		{"labeled", 1, 0, true},
		{"gotos", 1, 0, true},
		{"selects", 2, 0, true},
	}
	for _, c := range cases {
		g := graphFor(t, f, c.fn)
		if got := len(g.Returns); got != c.returns {
			t.Errorf("%s: %d returns, want %d", c.fn, got, c.returns)
		}
		if got := len(g.Defers); got != c.defers {
			t.Errorf("%s: %d defers, want %d", c.fn, got, c.defers)
		}
		if got := len(g.Exit.Preds) > 0; got != c.exitReachable {
			t.Errorf("%s: exit reachable = %v, want %v", c.fn, got, c.exitReachable)
		}
		// Every block's edges must be mutually linked.
		for _, b := range g.Blocks {
			for _, e := range b.Succs {
				if e.From != b {
					t.Errorf("%s: edge From mismatch", c.fn)
				}
				found := false
				for _, p := range e.To.Preds {
					if p == e {
						found = true
					}
				}
				if !found {
					t.Errorf("%s: edge not registered in Preds", c.fn)
				}
			}
		}
	}
}

// TestReachingDefinitions exercises the generic solver with a second
// lattice (may-analysis with union meet) to show Forward is not tied to
// guard facts: which assignments of x can reach the probe?
func TestReachingDefinitions(t *testing.T) {
	src := `package p
func probe(x int) {}
func f(c bool) {
	x := 1
	if c {
		x = 2
	}
	probe(x)
}
`
	_, f, info := typecheck(t, src)
	g := graphFor(t, f, "f")

	// State: set of line numbers whose assignment to x may reach.
	union := func(a, b map[ast.Node]bool) map[ast.Node]bool {
		out := map[ast.Node]bool{}
		for k := range a {
			out[k] = true
		}
		for k := range b {
			out[k] = true
		}
		return out
	}
	problem := &Forward[map[ast.Node]bool]{
		Entry: map[ast.Node]bool{},
		Meet:  union,
		Equal: func(a, b map[ast.Node]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, in map[ast.Node]bool) map[ast.Node]bool {
			out := in
			for _, n := range b.Nodes {
				if as, ok := n.(*ast.AssignStmt); ok {
					out = map[ast.Node]bool{as: true} // kill all, gen this
				}
			}
			return out
		},
	}
	sol := problem.Solve(g)

	// Find the probe's block.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "probe" {
				continue
			}
			in, live := sol.In(b)
			if !live {
				t.Fatal("probe unreachable")
			}
			if len(in) != 2 {
				t.Fatalf("got %d reaching definitions, want 2", len(in))
			}
			_ = info
			return
		}
	}
	t.Fatal("probe not found")
}
