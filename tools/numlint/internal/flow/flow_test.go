package flow

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheck parses and type-checks one source file.
func typecheck(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, f, info
}

// graphFor builds the CFG of the named function.
func graphFor(t *testing.T, f *ast.File, name string) *Graph {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return New(fd.Body)
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

// probeFacts locates every `probe(x)` call in the solved graph and
// returns the facts holding for x at each call, keyed by the probe's
// string literal tag when present: probe(x, "tag").
func probeFacts(t *testing.T, info *types.Info, g *Graph) map[string]struct {
	Obj   types.Object
	Facts Facts
	Live  bool
} {
	t.Helper()
	sol := GuardFacts(info, g)
	out := map[string]struct {
		Obj   types.Object
		Facts Facts
		Live  bool
	}{}
	n := 0
	for _, b := range g.Blocks {
		for idx, node := range b.Nodes {
			ast.Inspect(node, func(nd ast.Node) bool {
				call, ok := nd.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "probe" || len(call.Args) == 0 {
					return true
				}
				arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
				if !ok {
					t.Fatalf("probe arg must be an identifier")
				}
				tag := fmt.Sprintf("#%d", n)
				n++
				if len(call.Args) > 1 {
					if lit, ok := call.Args[1].(*ast.BasicLit); ok {
						tag = lit.Value[1 : len(lit.Value)-1]
					}
				}
				facts, live := FactsAt(info, sol, b, idx)
				out[tag] = struct {
					Obj   types.Object
					Facts Facts
					Live  bool
				}{info.Uses[arg], facts, live}
				return true
			})
		}
	}
	return out
}

const factSrc = `package p

func probe(x float64, tag ...string) {}

func branches(x float64) float64 {
	if x > 0 {
		probe(x, "then")
	} else {
		probe(x, "else")
	}
	probe(x, "join")
	if x == 0 {
		return 0
	}
	probe(x, "after-guard")
	return 1 / x
}

func shortCircuit(a, b float64) {
	if a > 0 && b != 0 {
		probe(a, "and-a")
		probe(b, "and-b")
	}
	if a <= 0 || b == 0 {
		probe(a, "or-then")
		return
	}
	probe(a, "or-else-a")
	probe(b, "or-else-b")
}

func negation(x float64) {
	if !(x <= 0) {
		probe(x, "not")
	}
}

func loops(x float64) {
	for x > 0 {
		probe(x, "loop-body")
		x = x - 1
	}
	probe(x, "loop-exit")
	for i := 0; i < 10; i++ {
		if x == 0 {
			continue
		}
		probe(x, "loop-guarded")
	}
}

func killed(x float64) {
	if x > 0 {
		probe(x, "before-kill")
		x = -1
		probe(x, "after-kill")
	}
}

func tagless(x float64) {
	switch {
	case x > 0:
		probe(x, "case-pos")
	default:
		probe(x, "case-default")
	}
}

func earlyReturn(x float64) float64 {
	if x <= 0 {
		return 0
	}
	probe(x, "post-early-return")
	return 1 / x
}

func unreachable(x float64) {
	return
	probe(x, "dead") //nolint
}
`

func TestGuardFacts(t *testing.T) {
	_, f, info := typecheck(t, factSrc)
	cases := []struct {
		fn, tag string
		pred    Pred
		want    bool
	}{
		{"branches", "then", Positive, true},
		{"branches", "then", NonZero, true}, // implication
		{"branches", "else", Positive, false},
		{"branches", "join", Positive, false}, // meet over both branches
		{"branches", "after-guard", NonZero, true},
		{"branches", "after-guard", Positive, false},
		{"shortCircuit", "and-a", Positive, true},
		{"shortCircuit", "and-b", NonZero, true},
		{"shortCircuit", "or-then", Positive, false},
		{"shortCircuit", "or-else-a", Positive, true}, // !(a<=0)
		{"shortCircuit", "or-else-b", NonZero, true},  // !(b==0)
		{"negation", "not", Positive, true},
		{"loops", "loop-body", Positive, true},
		{"loops", "loop-exit", Positive, false},
		{"loops", "loop-guarded", NonZero, true}, // continue-guard dominates
		{"killed", "before-kill", Positive, true},
		{"killed", "after-kill", Positive, false},
		{"tagless", "case-pos", Positive, true},
		{"tagless", "case-default", Positive, false},
		{"earlyReturn", "post-early-return", Positive, true},
	}
	graphs := map[string]map[string]struct {
		Obj   types.Object
		Facts Facts
		Live  bool
	}{}
	for _, c := range cases {
		probes, ok := graphs[c.fn]
		if !ok {
			probes = probeFacts(t, info, graphFor(t, f, c.fn))
			graphs[c.fn] = probes
		}
		p, ok := probes[c.tag]
		if !ok {
			t.Errorf("%s: no probe %q", c.fn, c.tag)
			continue
		}
		if !p.Live {
			t.Errorf("%s/%s: probe unreachable", c.fn, c.tag)
			continue
		}
		if got := p.Facts.Has(p.Obj, c.pred); got != c.want {
			t.Errorf("%s/%s: Has(%s, %v) = %v, want %v (facts %v)",
				c.fn, c.tag, p.Obj.Name(), c.pred, got, c.want, p.Facts)
		}
	}
}

func TestUnreachableBlock(t *testing.T) {
	_, f, info := typecheck(t, factSrc)
	probes := probeFacts(t, info, graphFor(t, f, "unreachable"))
	p, ok := probes["dead"]
	if !ok {
		t.Fatal("no probe \"dead\"")
	}
	if p.Live {
		t.Error("statement after return reported reachable")
	}
}

const cfgSrc = `package p

import "sync"

func simple() int {
	x := 1
	return x
}

func twoReturns(c bool) int {
	if c {
		return 1
	}
	return 2
}

func deferred(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	if mu == nil {
		return
	}
}

func switchFall(x int) int {
	switch x {
	case 0:
		x++
		fallthrough
	case 1:
		return x
	}
	return -1
}

func forever() {
	for {
	}
}

func panics(c bool) int {
	if c {
		panic("no")
	}
	return 1
}

func labeled() int {
	n := 0
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == 2 {
				continue outer
			}
			if i == 2 {
				break outer
			}
			n++
		}
	}
	return n
}

func gotos(x int) int {
	if x > 0 {
		goto done
	}
	x = -x
done:
	return x
}

func selects(ch chan int, done chan struct{}) int {
	select {
	case v := <-ch:
		return v
	case <-done:
		return 0
	}
}
`

func TestCFGStructure(t *testing.T) {
	_, f, _ := typecheck(t, cfgSrc)
	cases := []struct {
		fn      string
		returns int
		defers  int
		// exitReachable: the synthetic Exit has at least one predecessor.
		exitReachable bool
	}{
		{"simple", 1, 0, true},
		{"twoReturns", 2, 0, true},
		{"deferred", 1, 1, true},
		{"switchFall", 2, 0, true},
		{"forever", 0, 0, false},
		{"panics", 1, 0, true},
		{"labeled", 1, 0, true},
		{"gotos", 1, 0, true},
		{"selects", 2, 0, true},
	}
	for _, c := range cases {
		g := graphFor(t, f, c.fn)
		if got := len(g.Returns); got != c.returns {
			t.Errorf("%s: %d returns, want %d", c.fn, got, c.returns)
		}
		if got := len(g.Defers); got != c.defers {
			t.Errorf("%s: %d defers, want %d", c.fn, got, c.defers)
		}
		if got := len(g.Exit.Preds) > 0; got != c.exitReachable {
			t.Errorf("%s: exit reachable = %v, want %v", c.fn, got, c.exitReachable)
		}
		// Every block's edges must be mutually linked.
		for _, b := range g.Blocks {
			for _, e := range b.Succs {
				if e.From != b {
					t.Errorf("%s: edge From mismatch", c.fn)
				}
				found := false
				for _, p := range e.To.Preds {
					if p == e {
						found = true
					}
				}
				if !found {
					t.Errorf("%s: edge not registered in Preds", c.fn)
				}
			}
		}
	}
}

const selectSrc = `package p

func recvCase(ch chan int, done chan struct{}) int {
	select {
	case v := <-ch:
		return v
	case <-done:
		return 0
	}
}

func withDefault(ch chan int) int {
	x := 0
	select {
	case x = <-ch:
	default:
		x = -1
	}
	return x
}

func sendCase(ch chan int, done chan struct{}) int {
	select {
	case ch <- 1:
		return 1
	case <-done:
	}
	return 0
}

func breakOut(ch chan int) int {
	select {
	case <-ch:
		break
	default:
	}
	return 2
}

func labeledBreak(ch chan int) int {
	n := 0
loop:
	for {
		select {
		case <-ch:
			break loop
		default:
			n++
		}
	}
	return n
}

func emptySelect() int {
	select {}
}

func noDefaultAllReturn(ch chan int) int {
	select {
	case v := <-ch:
		return v
	}
}
`

// TestSelectCFG pins the select-statement graph shape: per-case comm
// blocks, the default edge, break-out to the join, and the blocking
// behaviour of empty / default-less selects.
func TestSelectCFG(t *testing.T) {
	_, f, _ := typecheck(t, selectSrc)
	cases := []struct {
		fn      string
		returns int
		// headSuccs is the number of successor edges of the block that
		// dispatches the select (one per comm clause, plus one per
		// default clause; never a silent fall-through edge).
		headSuccs int
		// exitReachable: some path reaches the synthetic Exit.
		exitReachable bool
	}{
		{"recvCase", 2, 2, true},
		{"withDefault", 1, 2, true},
		{"sendCase", 2, 2, true},
		{"breakOut", 1, 2, true},
		{"labeledBreak", 1, 2, true},
		{"emptySelect", 0, 0, false},
		{"noDefaultAllReturn", 1, 1, true},
	}
	for _, c := range cases {
		g := graphFor(t, f, c.fn)
		if got := len(g.Returns); got != c.returns {
			t.Errorf("%s: %d returns, want %d", c.fn, got, c.returns)
		}
		if got := len(g.Exit.Preds) > 0; got != c.exitReachable {
			t.Errorf("%s: exit reachable = %v, want %v", c.fn, got, c.exitReachable)
		}
		// Locate the dispatch block: the one whose successors all start
		// with a comm node or lead to the join. Identify it as the block
		// with the most successors that is not Entry's trivial chain —
		// for these fixtures, the unique block with >= headSuccs edges
		// when headSuccs > 0.
		if c.headSuccs > 0 {
			found := false
			for _, blk := range g.Blocks {
				if len(blk.Succs) == c.headSuccs && blk != g.Exit {
					commLike := 0
					for _, e := range blk.Succs {
						if e.Cond == nil {
							commLike++
						}
					}
					if commLike == c.headSuccs {
						found = true
						break
					}
				}
			}
			if !found {
				t.Errorf("%s: no dispatch block with %d unconditional successors", c.fn, c.headSuccs)
			}
		}
		for _, blk := range g.Blocks {
			for _, e := range blk.Succs {
				if e.From != blk {
					t.Errorf("%s: edge From mismatch", c.fn)
				}
			}
		}
	}
}

// TestSelectCommScoping checks that `v := <-ch` comm assignments stay
// scoped to their case body: a fact about x established before the
// select survives into a case that does not assign x, and dies in the
// case that does.
func TestSelectCommScoping(t *testing.T) {
	src := `package p
func probe(x float64, tag ...string) {}
func f(ch chan float64, x float64) {
	if x > 0 {
		select {
		case x = <-ch:
			probe(x, "reassigned")
		case <-ch:
			probe(x, "preserved")
		}
	}
}
`
	_, f, info := typecheck(t, src)
	probes := probeFacts(t, info, graphFor(t, f, "f"))
	for tag, want := range map[string]bool{"reassigned": false, "preserved": true} {
		p, ok := probes[tag]
		if !ok {
			t.Fatalf("no probe %q", tag)
		}
		if !p.Live {
			t.Fatalf("probe %q unreachable", tag)
		}
		if got := p.Facts.Has(p.Obj, Positive); got != want {
			t.Errorf("%s: Has(x, positive) = %v, want %v", tag, got, want)
		}
	}
}

// TestGuardFactsOpt exercises entry facts and assertion-call facts — the
// hooks the interprocedural layer uses to seed contracts and recognise
// generated runtime shims.
func TestGuardFactsOpt(t *testing.T) {
	src := `package p
func probe(x float64, tag ...string) {}
func assertPos(x float64) {}
func f(x, y float64) {
	probe(x, "entry")
	assertPos(y)
	probe(y, "asserted")
	y = -1
	probe(y, "killed")
}
`
	_, f, info := typecheck(t, src)
	g := graphFor(t, f, "f")

	var xObj, yObj types.Object
	ast.Inspect(f, func(n ast.Node) bool {
		if fd, ok := n.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					switch name.Name {
					case "x":
						xObj = info.Defs[name]
					case "y":
						yObj = info.Defs[name]
					}
				}
			}
		}
		return true
	})
	if xObj == nil || yObj == nil {
		t.Fatal("parameter objects not found")
	}

	opt := Options{
		Entry: Facts{{Obj: xObj, P: Positive}: true},
		Asserts: func(call *ast.CallExpr) Facts {
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "assertPos" || len(call.Args) != 1 {
				return nil
			}
			arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
			if !ok {
				return nil
			}
			obj := info.Uses[arg]
			if obj == nil {
				return nil
			}
			return Facts{{Obj: obj, P: Positive}: true}
		},
	}
	sol := GuardFactsOpt(info, g, opt)

	// Re-locate the probes under FactsAtOpt.
	found := map[string]bool{}
	for _, b := range g.Blocks {
		for idx, node := range b.Nodes {
			ast.Inspect(node, func(nd ast.Node) bool {
				call, ok := nd.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "probe" || len(call.Args) < 2 {
					return true
				}
				lit := call.Args[1].(*ast.BasicLit)
				tag := lit.Value[1 : len(lit.Value)-1]
				facts, live := FactsAtOpt(info, sol, b, idx, opt)
				if !live {
					t.Fatalf("probe %q unreachable", tag)
				}
				arg := ast.Unparen(call.Args[0]).(*ast.Ident)
				obj := info.Uses[arg]
				var want bool
				switch tag {
				case "entry", "asserted":
					want = true
				case "killed":
					want = false
				default:
					t.Fatalf("unexpected tag %q", tag)
				}
				if got := facts.Has(obj, Positive); got != want {
					t.Errorf("probe %q: Has(%s, positive) = %v, want %v", tag, obj.Name(), got, want)
				}
				found[tag] = true
				return true
			})
		}
	}
	for _, tag := range []string{"entry", "asserted", "killed"} {
		if !found[tag] {
			t.Errorf("probe %q not visited", tag)
		}
	}
}

// TestReachingDefinitions exercises the generic solver with a second
// lattice (may-analysis with union meet) to show Forward is not tied to
// guard facts: which assignments of x can reach the probe?
func TestReachingDefinitions(t *testing.T) {
	src := `package p
func probe(x int) {}
func f(c bool) {
	x := 1
	if c {
		x = 2
	}
	probe(x)
}
`
	_, f, info := typecheck(t, src)
	g := graphFor(t, f, "f")

	// State: set of line numbers whose assignment to x may reach.
	union := func(a, b map[ast.Node]bool) map[ast.Node]bool {
		out := map[ast.Node]bool{}
		for k := range a {
			out[k] = true
		}
		for k := range b {
			out[k] = true
		}
		return out
	}
	problem := &Forward[map[ast.Node]bool]{
		Entry: map[ast.Node]bool{},
		Meet:  union,
		Equal: func(a, b map[ast.Node]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, in map[ast.Node]bool) map[ast.Node]bool {
			out := in
			for _, n := range b.Nodes {
				if as, ok := n.(*ast.AssignStmt); ok {
					out = map[ast.Node]bool{as: true} // kill all, gen this
				}
			}
			return out
		},
	}
	sol := problem.Solve(g)

	// Find the probe's block.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "probe" {
				continue
			}
			in, live := sol.In(b)
			if !live {
				t.Fatal("probe unreachable")
			}
			if len(in) != 2 {
				t.Fatalf("got %d reaching definitions, want 2", len(in))
			}
			_ = info
			return
		}
	}
	t.Fatal("probe not found")
}
