package flow

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Pred is a predicate a guard can establish about a variable.
type Pred uint8

const (
	// NonZero: the variable compared unequal to zero.
	NonZero Pred = iota
	// Positive: strictly greater than zero (implies NonZero and
	// NonNegative).
	Positive
	// NonNegative: greater than or equal to zero.
	NonNegative
)

func (p Pred) String() string {
	switch p {
	case NonZero:
		return "nonzero"
	case Positive:
		return "positive"
	case NonNegative:
		return "nonnegative"
	}
	return "unknown"
}

// Fact states that a predicate holds for one variable.
type Fact struct {
	Obj types.Object
	P   Pred
}

// Facts is a set of facts that hold on every path reaching a point.
type Facts map[Fact]bool

// Has reports whether the set establishes pred for obj, honouring
// implications: Positive satisfies NonZero and NonNegative queries.
func (f Facts) Has(obj types.Object, pred Pred) bool {
	if f[Fact{obj, pred}] {
		return true
	}
	if pred == NonZero || pred == NonNegative {
		return f[Fact{obj, Positive}]
	}
	return false
}

func (f Facts) clone() Facts {
	out := make(Facts, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

func intersectFacts(a, b Facts) Facts {
	out := Facts{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func equalFacts(a, b Facts) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// CondFacts returns the facts established by cond evaluating to branch,
// decomposing short-circuit operators: `a && b` true establishes both
// sides' facts, `a || b` false establishes both sides' negated facts,
// and `!x` swaps the branch. Comparisons against constants yield
// sign facts for plain identifier operands.
func CondFacts(info *types.Info, cond ast.Expr, branch bool) Facts {
	out := Facts{}
	condFactsInto(info, cond, branch, out)
	return out
}

func condFactsInto(info *types.Info, cond ast.Expr, branch bool, out Facts) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			condFactsInto(info, e.X, !branch, out)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if branch {
				condFactsInto(info, e.X, true, out)
				condFactsInto(info, e.Y, true, out)
			}
		case token.LOR:
			if !branch {
				condFactsInto(info, e.X, false, out)
				condFactsInto(info, e.Y, false, out)
			}
		default:
			comparisonFacts(info, e, branch, out)
		}
	}
}

// comparisonFacts derives sign facts from `ident OP const` (and the
// mirrored `const OP ident`) comparisons.
func comparisonFacts(info *types.Info, e *ast.BinaryExpr, branch bool, out Facts) {
	op := e.Op
	obj, c := identAndConst(info, e.X, e.Y)
	if obj == nil {
		// Mirror: `0 < x` is `x > 0`.
		obj, c = identAndConst(info, e.Y, e.X)
		if obj == nil {
			return
		}
		switch op {
		case token.LSS:
			op = token.GTR
		case token.LEQ:
			op = token.GEQ
		case token.GTR:
			op = token.LSS
		case token.GEQ:
			op = token.LEQ
		}
	}
	sign := constant.Sign(c)
	add := func(p Pred) { out[Fact{obj, p}] = true }
	if branch {
		switch {
		case op == token.GTR && sign >= 0: // x > c with c >= 0
			add(Positive)
		case op == token.GEQ && sign == 0: // x >= 0
			add(NonNegative)
		case op == token.GEQ && sign > 0: // x >= c, c > 0
			add(Positive)
		case op == token.NEQ && sign == 0: // x != 0
			add(NonZero)
		case op == token.EQL && sign > 0: // x == c, c > 0
			add(Positive)
		}
		return
	}
	// branch == false: the comparison failed.
	switch {
	case op == token.EQL && sign == 0: // !(x == 0)
		add(NonZero)
	case op == token.LSS && sign == 0: // !(x < 0)
		add(NonNegative)
	case op == token.LSS && sign > 0: // !(x < c), c > 0 → x >= c
		add(Positive)
	case op == token.LEQ && sign == 0: // !(x <= 0)
		add(Positive)
	case op == token.LEQ && sign > 0: // !(x <= c) → x > c
		add(Positive)
	}
}

// identAndConst resolves (x, c) when x is a plain identifier and c a
// numeric constant expression; nil otherwise.
func identAndConst(info *types.Info, x, c ast.Expr) (types.Object, constant.Value) {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	obj := info.Uses[id]
	if obj == nil {
		return nil, nil
	}
	tv, ok := info.Types[c]
	if !ok || tv.Value == nil {
		return nil, nil
	}
	k := tv.Value.Kind()
	if k != constant.Int && k != constant.Float {
		return nil, nil
	}
	return obj, tv.Value
}

// AssignedObjects collects the objects (re)assigned by one statement —
// the kill set of the guarded-fact transfer function. Address-taking is
// treated as an assignment: once &x escapes, no guard on x is stable.
func AssignedObjects(info *types.Info, n ast.Node) []types.Object {
	var out []types.Object
	addIdent := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				out = append(out, obj)
			} else if obj := info.Uses[id]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	Inspect(n, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // separate frame
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				addIdent(lhs)
			}
		case *ast.IncDecStmt:
			addIdent(s.X)
		case *ast.RangeStmt:
			addIdent(s.Key)
			if s.Value != nil {
				addIdent(s.Value)
			}
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				addIdent(s.X)
			}
		}
		return true
	})
	return out
}

// Options configures a guard-fact solve beyond the plain intraprocedural
// defaults.
type Options struct {
	// Entry holds on function entry: the interprocedural layer seeds it
	// with contract requires and call-site context facts, so a guard
	// discharged by every caller (or promised by a //numlint:requires
	// contract) counts inside the callee too.
	Entry Facts
	// Asserts, when non-nil, maps a call expression to the facts the call
	// establishes by runtime assertion (e.g. check.Positive or a
	// generated contract shim): after the call returns, the facts hold.
	Asserts func(call *ast.CallExpr) Facts
}

// stepFacts pushes facts through one CFG node: assignments kill every
// fact about the assigned objects, then assertion calls establish their
// facts. out is copy-on-write.
func stepFacts(info *types.Info, opt Options, out Facts, n ast.Node) Facts {
	cloned := false
	mutate := func() {
		if !cloned {
			out = out.clone()
			cloned = true
		}
	}
	for _, obj := range AssignedObjects(info, n) {
		for f := range out {
			if f.Obj == obj {
				mutate()
				delete(out, f)
			}
		}
	}
	if opt.Asserts != nil {
		Inspect(n, func(nd ast.Node) bool {
			if _, ok := nd.(*ast.FuncLit); ok {
				return false
			}
			call, ok := nd.(*ast.CallExpr)
			if !ok {
				return true
			}
			for f := range opt.Asserts(call) {
				mutate()
				out[f] = true
			}
			return true
		})
	}
	return out
}

// GuardFacts solves the guarded-fact problem for one function graph:
// for every reachable block, the facts that hold on entry no matter
// which path was taken.
func GuardFacts(info *types.Info, g *Graph) *Solution[Facts] {
	return GuardFactsOpt(info, g, Options{})
}

// GuardFactsOpt is GuardFacts with entry facts and assertion-call
// recognition.
func GuardFactsOpt(info *types.Info, g *Graph, opt Options) *Solution[Facts] {
	entry := opt.Entry
	if entry == nil {
		entry = Facts{}
	}
	problem := &Forward[Facts]{
		Entry: entry,
		Meet:  intersectFacts,
		Equal: equalFacts,
		Transfer: func(b *Block, in Facts) Facts {
			out := in
			for _, n := range b.Nodes {
				out = stepFacts(info, opt, out, n)
			}
			return out
		},
		EdgeFn: func(e *Edge, out Facts) Facts {
			if e.Cond == nil {
				return out
			}
			extra := CondFacts(info, e.Cond, e.Branch)
			if len(extra) == 0 {
				return out
			}
			merged := out.clone()
			for f := range extra {
				merged[f] = true
			}
			return merged
		},
	}
	return problem.Solve(g)
}

// FactsAt returns the facts holding immediately before node occurrence
// idx of block b, given the solved block-entry facts: the entry facts
// minus everything killed by the preceding nodes of the block.
// Unreachable blocks yield (nil, false).
func FactsAt(info *types.Info, sol *Solution[Facts], b *Block, idx int) (Facts, bool) {
	return FactsAtOpt(info, sol, b, idx, Options{})
}

// FactsAtOpt is FactsAt under the same Options the solution was computed
// with, so assertion calls earlier in the block contribute their facts.
func FactsAtOpt(info *types.Info, sol *Solution[Facts], b *Block, idx int, opt Options) (Facts, bool) {
	in, ok := sol.In(b)
	if !ok {
		return nil, false
	}
	out := in
	for i := 0; i < idx && i < len(b.Nodes); i++ {
		out = stepFacts(info, opt, out, b.Nodes[i])
	}
	return out, true
}
