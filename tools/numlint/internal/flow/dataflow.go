package flow

// Forward is a generic forward dataflow problem over a Graph. The
// state type S is analysis-defined; the solver iterates a worklist to a
// fixpoint, so Meet/Transfer/EdgeFn must be monotone for termination.
//
// States propagate along edges: the input of a block is the meet over
// its predecessors of EdgeFn(edge, Transfer(block-in of pred)). Blocks
// never reached from Entry keep no state, which analyses observe as
// "unreachable" (In returns ok=false).
type Forward[S any] struct {
	// Entry is the state on function entry.
	Entry S
	// Meet combines the states of two incoming edges; it must be
	// commutative and associative (typically set intersection for
	// must-facts, union for may-facts).
	Meet func(a, b S) S
	// Transfer pushes a state through one block's Nodes.
	Transfer func(b *Block, in S) S
	// EdgeFn, when non-nil, refines the source block's output state for
	// one specific edge (e.g. adds branch-condition facts).
	EdgeFn func(e *Edge, out S) S
	// Equal detects the fixpoint.
	Equal func(a, b S) bool
}

// Solution holds the per-block input states of a solved problem.
type Solution[S any] struct {
	problem *Forward[S]
	in      map[*Block]S
}

// Solve runs the worklist algorithm and returns the per-block input
// states.
func (f *Forward[S]) Solve(g *Graph) *Solution[S] {
	sol := &Solution[S]{problem: f, in: map[*Block]S{}}
	sol.in[g.Entry] = f.Entry
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := f.Transfer(blk, sol.in[blk])
		for _, e := range blk.Succs {
			next := out
			if f.EdgeFn != nil {
				next = f.EdgeFn(e, out)
			}
			old, seen := sol.in[e.To]
			if seen {
				next = f.Meet(old, next)
				if f.Equal(old, next) {
					continue
				}
			}
			sol.in[e.To] = next
			if !queued[e.To] {
				queued[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return sol
}

// In returns the solved input state of a block; ok is false when the
// block is unreachable from Entry.
func (s *Solution[S]) In(b *Block) (S, bool) {
	st, ok := s.in[b]
	return st, ok
}
