// Package callgraph builds a module-wide static call graph over the
// packages the numlint loader has type-checked, for the interprocedural
// summary engine (see ../summary).
//
// Nodes are *types.Func objects; edges are direct (statically resolved)
// calls: plain function calls, method calls through a concrete receiver,
// and calls inside function literals (marked, because facts holding in
// the enclosing frame do not necessarily hold when the literal runs).
// Indirect calls through function values and interface dispatch produce
// no edges — a node records instead whether its function is ever used as
// a value (AddressTaken) or promoted to an interface method set, so
// consumers know the edge set may be incomplete for it.
//
// SCCs returns Tarjan's strongly connected components in bottom-up
// (callees before callers) order, which is the evaluation order of the
// summary fixed point.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Package is the slice of the loader's per-package state the graph
// builder needs.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Node is one function in the graph.
type Node struct {
	// Fn is the function object; the canonical node key.
	Fn *types.Func
	// Decl is the declaration with body, or nil for functions declared
	// in packages outside the analyzed set (or bodyless declarations).
	Decl *ast.FuncDecl
	// Pkg is the analyzed package holding Decl (nil when Decl is nil).
	Pkg *Package
	// Out and In are the call edges leaving and entering the node.
	Out []*Edge
	In  []*Edge
	// AddressTaken reports that the function is referenced somewhere
	// other than the Fun position of a call — assigned, passed, or
	// returned as a value — so not every call to it is visible as an
	// edge.
	AddressTaken bool
}

// Edge is one static call site.
type Edge struct {
	Caller, Callee *Node
	// Site is the call expression inside Caller's body.
	Site *ast.CallExpr
	// InLit marks sites inside a function literal nested in Caller's
	// body: the call does not necessarily execute under the facts of the
	// enclosing frame (it may run later, concurrently, or never).
	InLit bool
}

// Graph is the module-wide call graph.
type Graph struct {
	// Nodes maps every function seen — declared in the analyzed
	// packages or merely called from them — to its node.
	Nodes map[*types.Func]*Node
	// Packages are the analyzed packages, as given.
	Packages []*Package
}

// Lookup returns the node of fn, or nil.
func (g *Graph) Lookup(fn *types.Func) *Node {
	return g.Nodes[fn]
}

// Build constructs the call graph of the given packages.
func Build(pkgs []*Package) *Graph {
	g := &Graph{Nodes: map[*types.Func]*Node{}, Packages: pkgs}
	node := func(fn *types.Func) *Node {
		n, ok := g.Nodes[fn]
		if !ok {
			n = &Node{Fn: fn}
			g.Nodes[fn] = n
		}
		return n
	}

	// First pass: register every declaration so Decl/Pkg are set before
	// edges resolve to the nodes.
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := node(fn)
				if fd.Body != nil {
					n.Decl = fd
					n.Pkg = p
				}
			}
		}
	}

	// Second pass: edges and address-taken marks.
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller, _ := p.Info.Defs[fd.Name].(*types.Func)
				if caller == nil {
					continue
				}
				addCalls(g, p, node(caller), fd.Body)
			}
		}
	}
	markAddressTaken(g, pkgs)
	return g
}

// addCalls walks one function body recording call edges; litDepth > 0
// inside nested function literals.
func addCalls(g *Graph, p *Package, caller *Node, body ast.Node) {
	var walk func(n ast.Node, litDepth int)
	walk = func(n ast.Node, litDepth int) {
		ast.Inspect(n, func(nd ast.Node) bool {
			switch e := nd.(type) {
			case *ast.FuncLit:
				walk(e.Body, litDepth+1)
				return false
			case *ast.CallExpr:
				fn := StaticCallee(p.Info, e)
				if fn == nil {
					return true
				}
				callee, ok := g.Nodes[fn]
				if !ok {
					callee = &Node{Fn: fn}
					g.Nodes[fn] = callee
				}
				edge := &Edge{Caller: caller, Callee: callee, Site: e, InLit: litDepth > 0}
				caller.Out = append(caller.Out, edge)
				callee.In = append(callee.In, edge)
			}
			return true
		})
	}
	walk(body, 0)
}

// StaticCallee resolves the function or concrete method a call
// statically invokes, or nil for builtins, conversions, indirect calls,
// and interface dispatch.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		// Interface method calls resolve to the interface's *types.Func,
		// which never has a Decl in the analyzed set; method expressions
		// (T.M)(recv, args...) shift the argument list by the receiver.
		// Treat both as unresolved rather than pretending the edge is a
		// plain concrete call.
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal || types.IsInterface(sel.Recv()) {
				return nil
			}
		}
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// markAddressTaken flags every function referenced outside the Fun
// position of a call: such functions can be invoked through edges the
// graph does not see.
func markAddressTaken(g *Graph, pkgs []*Package) {
	for _, p := range pkgs {
		for _, f := range p.Files {
			// Collect the idents that are the Fun of some call (after
			// unwrapping selectors/parens), then flag every other use.
			inCall := map[*ast.Ident]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					inCall[fun] = true
				case *ast.SelectorExpr:
					inCall[fun.Sel] = true
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || inCall[id] {
					return true
				}
				fn, ok := p.Info.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				if node := g.Nodes[fn]; node != nil {
					node.AddressTaken = true
				} else {
					g.Nodes[fn] = &Node{Fn: fn, AddressTaken: true}
				}
				return true
			})
		}
	}
}

// SCCs returns the strongly connected components of the graph in
// bottom-up order: every edge leaving a component points to an earlier
// component in the returned slice, so summaries can be computed with a
// single left-to-right sweep (iterating to a fixed point inside each
// component). Only nodes with declarations participate; external
// functions are leaves with no summaries. The order is deterministic:
// roots are visited in (package path, position) order.
func (g *Graph) SCCs() [][]*Node {
	nodes := make([]*Node, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Decl != nil {
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool {
		a, b := nodes[i], nodes[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})

	// Tarjan's algorithm (iterative via explicit recursion on a stack of
	// frames would be overkill at module scale; recursion depth is
	// bounded by the call-chain length).
	index := map[*Node]int{}
	low := map[*Node]int{}
	onStack := map[*Node]bool{}
	var stack []*Node
	var out [][]*Node
	next := 0

	var strongconnect func(v *Node)
	strongconnect = func(v *Node) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range v.Out {
			w := e.Callee
			if w.Decl == nil {
				continue
			}
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []*Node
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return out
}
