package callgraph

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

func load(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Package{Path: "p", Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
}

func nodeByName(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for fn, n := range g.Nodes {
		if fn.Name() == name {
			return n
		}
	}
	t.Fatalf("no node %q", name)
	return nil
}

const src = `package p

type T struct{}

func (T) M() float64 { return helper(1) }

func helper(x float64) float64 { return x }

func top() float64 {
	var t T
	go func() {
		helper(3)
	}()
	return t.M() + helper(2)
}

func recA(n int) int {
	if n == 0 {
		return 0
	}
	return recB(n - 1)
}

func recB(n int) int { return recA(n) }

func self(n int) int {
	if n == 0 {
		return 0
	}
	return self(n - 1)
}

func taken() func(float64) float64 { return helper }

type I interface{ M() float64 }

func viaIface(i I) float64 { return i.M() }
`

func TestBuildEdges(t *testing.T) {
	g := Build([]*Package{load(t, src)})

	helper := nodeByName(t, g, "helper")
	if len(helper.In) != 3 {
		t.Fatalf("helper has %d in-edges, want 3 (M, top, go-literal)", len(helper.In))
	}
	lits := 0
	for _, e := range helper.In {
		if e.InLit {
			lits++
		}
	}
	if lits != 1 {
		t.Errorf("helper has %d in-lit edges, want 1", lits)
	}
	if !helper.AddressTaken {
		t.Error("helper returned as a value must be AddressTaken")
	}

	m := nodeByName(t, g, "M")
	// t.M() resolves to the concrete method; i.M() must not add an edge.
	concrete := 0
	for _, e := range m.In {
		if e.Caller.Fn.Name() == "top" {
			concrete++
		}
	}
	if concrete != 1 || len(m.In) != 1 {
		t.Errorf("M has %d in-edges (%d from top), want exactly 1 from top", len(m.In), concrete)
	}

	top := nodeByName(t, g, "top")
	if top.AddressTaken {
		t.Error("top is never used as a value")
	}
}

func TestSCCOrder(t *testing.T) {
	g := Build([]*Package{load(t, src)})
	sccs := g.SCCs()

	pos := map[string]int{}
	size := map[string]int{}
	for i, comp := range sccs {
		for _, n := range comp {
			pos[n.Fn.Name()] = i
			size[n.Fn.Name()] = len(comp)
		}
	}

	// Bottom-up: callees before callers.
	if !(pos["helper"] < pos["M"] && pos["M"] < pos["top"] && pos["helper"] < pos["top"]) {
		t.Errorf("not bottom-up: helper=%d M=%d top=%d", pos["helper"], pos["M"], pos["top"])
	}
	// recA and recB form one two-node component; self its own singleton.
	if pos["recA"] != pos["recB"] || size["recA"] != 2 {
		t.Errorf("recA/recB should share a 2-node SCC: pos %d/%d size %d", pos["recA"], pos["recB"], size["recA"])
	}
	if size["self"] != 1 {
		t.Errorf("self SCC size %d, want 1", size["self"])
	}

	// Determinism: a second build yields the same component order.
	again := Build([]*Package{load(t, src)}).SCCs()
	if len(again) != len(sccs) {
		t.Fatalf("SCC count changed across builds: %d vs %d", len(again), len(sccs))
	}
	for i := range sccs {
		if sccs[i][0].Fn.Name() != again[i][0].Fn.Name() && len(sccs[i]) == 1 && len(again[i]) == 1 {
			t.Errorf("component %d differs across builds: %s vs %s",
				i, sccs[i][0].Fn.Name(), again[i][0].Fn.Name())
		}
	}
}
