package main

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// floatcmpAnalyzer flags == and != between floating-point operands.
//
// Rounding makes exact float equality meaningless except against exact
// sentinels, so the analyzer whitelists: comparison against an exact
// constant zero (the universal "no entry / absorbing / unset" sentinel
// in this codebase), comparison against ±Inf produced by math.Inf, and
// the x != x NaN idiom. Everything else needs a tolerance or an explicit
// //numlint:ignore floatcmp justification.
var floatcmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag ==/!= on floating-point values outside exact-sentinel comparisons",
	Run:  runFloatcmp,
}

func runFloatcmp(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx := pass.Info.Types[be.X]
			ty := pass.Info.Types[be.Y]
			if !isFloat(tx.Type) && !isFloat(ty.Type) {
				return true
			}
			if isExactSentinel(pass, be.X, tx) || isExactSentinel(pass, be.Y, ty) {
				return true
			}
			if be.Op == token.NEQ && types.ExprString(be.X) == types.ExprString(be.Y) {
				// x != x is the portable NaN test.
				return true
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison between %s and %s; compare with a tolerance or an exact sentinel (0, ±Inf)",
				be.Op, types.ExprString(be.X), types.ExprString(be.Y))
			return true
		})
	}
}

// isExactSentinel reports whether e is an exactly-representable sentinel:
// a constant zero or a ±Inf obtained from math.Inf.
func isExactSentinel(pass *Pass, e ast.Expr, tv types.TypeAndValue) bool {
	if tv.Value != nil && tv.Value.Kind() != constant.Unknown && constant.Sign(tv.Value) == 0 {
		return true
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && isMathCall(pass.Info, call, "Inf") {
		return true
	}
	if ue, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && ue.Op == token.SUB {
		if call, ok := ast.Unparen(ue.X).(*ast.CallExpr); ok && isMathCall(pass.Info, call, "Inf") {
			return true
		}
	}
	return false
}
