package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// errchecklitAnalyzer flags discarded error results from module-local
// functions — CSR.MulVec, Builder.Freeze, the solver entry points, and
// anything else under the batlife module that returns an error.
//
// The numerical substrates report shape mismatches and non-finite values
// exclusively through error returns; dropping one turns a structural
// failure into a silently wrong lifetime distribution. Standard-library
// calls (fmt.Println et al.) are deliberately out of scope — this is the
// "lite" in errcheck-lite.
var errcheckliteAnalyzer = &Analyzer{
	Name: "errchecklite",
	Doc:  "flag dropped error returns from module-local functions",
	Run:  runErrcheckLite,
}

func runErrcheckLite(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					reportDroppedCall(pass, call, "")
				}
			case *ast.GoStmt:
				reportDroppedCall(pass, s.Call, "go ")
			case *ast.DeferStmt:
				reportDroppedCall(pass, s.Call, "defer ")
			case *ast.AssignStmt:
				reportBlankErrAssign(pass, s)
			}
			return true
		})
	}
}

// moduleCallErrors returns the callee and the indices of its error
// results when the callee is a module-local function, or nil otherwise.
func moduleCallErrors(pass *Pass, call *ast.CallExpr) (*types.Func, []int) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil, nil
	}
	path := fn.Pkg().Path()
	if path != pass.ModPath && !strings.HasPrefix(path, pass.ModPath+"/") {
		return nil, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, nil
	}
	var errIdx []int
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			errIdx = append(errIdx, i)
		}
	}
	return fn, errIdx
}

func reportDroppedCall(pass *Pass, call *ast.CallExpr, prefix string) {
	fn, errIdx := moduleCallErrors(pass, call)
	if len(errIdx) == 0 {
		return
	}
	pass.Reportf(call.Pos(), "%serror result of %s.%s is dropped; handle it or assign it explicitly",
		prefix, fn.Pkg().Name(), fn.Name())
}

// reportBlankErrAssign flags `_`-discarded error results of module-local
// calls, e.g. `v, _ := b.Freeze()`.
func reportBlankErrAssign(pass *Pass, s *ast.AssignStmt) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn, errIdx := moduleCallErrors(pass, call)
	if len(errIdx) == 0 {
		return
	}
	for _, i := range errIdx {
		if i >= len(s.Lhs) {
			continue
		}
		if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(id.Pos(), "error result of %s.%s is discarded with _; handle it",
				fn.Pkg().Name(), fn.Name())
		}
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
