// Command numlint is the repository's numeric-safety and dataflow
// linter.
//
// It runs ten custom analyzers tuned to the battery-lifetime pipeline
// over module-local packages. Four are the per-expression checks from
// PR 1:
//
//	floatcmp      ==/!= on floats outside exact-sentinel comparisons
//	naninf        unguarded division / Log / Sqrt of parameters in float kernels
//	errchecklite  dropped error returns from module-local functions
//	unitsafety    raw numeric literals passed as internal/units quantities
//
// Five are dataflow analyzers built on the CFG engine in
// internal/flow (see docs/STATIC_ANALYSIS.md):
//
//	divguard      division/Log/Sqrt with no *dominating* positivity guard
//	probconserve  probability-vector writes reaching a return unguarded
//	ctxflow       calls that drop an in-scope context.Context
//	sharedcapture unsynchronised goroutine mutation + unbalanced lock paths
//	hotalloc      allocations inside //numlint:hotpath functions
//
// One is interprocedural, built on the module-wide call graph and
// function summaries (internal/callgraph + internal/summary):
//
//	contract      //numlint:requires / ensures verification: bodies must
//	              discharge declared ensures, call sites must satisfy
//	              declared requires
//
// The same summaries feed naninf, divguard, and probconserve, so a
// guard in every caller (or a callee's ensures) discharges obligations
// across call boundaries. Run -gen-checks to emit debugchecks-tagged
// runtime asserts for every contract (see docs/STATIC_ANALYSIS.md).
//
// Usage:
//
//	go run ./tools/numlint ./...
//	go run ./tools/numlint -pkgs ./internal/...,./cmd/... -json
//	go run ./tools/numlint -baseline .numlint-baseline.json ./...
//	go run ./tools/numlint -write-baseline .numlint-baseline.json ./...
//	go run ./tools/numlint -tags debugchecks ./internal/check
//
// With no package arguments the whole module is analyzed (every
// package under the module root, including cmd/ and tools/),
// regardless of the current directory.
//
// Findings are suppressed with a trailing or preceding comment:
//
//	//numlint:ignore <analyzer> <reason>
//
// or accepted wholesale in .numlint-baseline.json (see -baseline).
// Exit status: 0 clean (or all findings baselined), 1 new findings,
// 2 load or usage errors. See docs/STATIC_ANALYSIS.md for the full
// contract.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

var analyzers = []*Analyzer{
	floatcmpAnalyzer,
	naninfAnalyzer,
	errcheckliteAnalyzer,
	unitsafetyAnalyzer,
	divguardAnalyzer,
	probconserveAnalyzer,
	ctxflowAnalyzer,
	sharedcaptureAnalyzer,
	hotallocAnalyzer,
	contractAnalyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("numlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tags := fs.String("tags", "", "comma-separated extra build tags")
	verbose := fs.Bool("v", false, "log packages as they are analyzed")
	pkgsFlag := fs.String("pkgs", "", "comma-separated package patterns (combined with positional patterns)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON report on stdout")
	baselinePath := fs.String("baseline", "", "baseline file; findings matching it do not fail the run")
	writeBaselinePath := fs.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	genChecksFlag := fs.Bool("gen-checks", false, "write debugchecks runtime shims for every //numlint:requires/ensures contract, then exit")
	verifyGenFlag := fs.Bool("verify-gen-checks", false, "fail if the generated contract shims are out of sync with the contracts (CI mode)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: numlint [-tags tag,...] [-pkgs p1,p2] [-json] [-baseline file] [-write-baseline file] [-gen-checks | -verify-gen-checks] [-v] [packages...]")
		fmt.Fprintln(stderr, "analyzers:")
		for _, a := range analyzers {
			fmt.Fprintf(stderr, "  %-13s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if *pkgsFlag != "" {
		for _, p := range strings.Split(*pkgsFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				patterns = append(patterns, p)
			}
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "numlint:", err)
		return 2
	}
	modDir, modPath, err := findModule(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(patterns) == 0 {
		// Default: the whole module, independent of the working
		// directory numlint happens to be invoked from.
		patterns = []string{modPath + "/..."}
	}
	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}
	l := newLoader(modDir, modPath, tagList)

	paths, err := l.expandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "numlint: no packages match", patterns)
		return 2
	}

	// Phase one: load every requested package (plus transitive deps via
	// the import chain) so the interprocedural layer sees the whole set.
	var pis []*packageInfo
	for _, path := range paths {
		if *verbose {
			fmt.Fprintln(stderr, "numlint: loading", path)
		}
		pi, err := l.load(path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		pis = append(pis, pi)
	}
	inter := buildInter(l)

	if *genChecksFlag || *verifyGenFlag {
		return runGenChecks(genChecks(l, inter), *verifyGenFlag, stderr)
	}

	// Phase two: run the analyzers per requested package against the
	// shared summaries.
	var diags []Diagnostic
	for _, pi := range pis {
		if *verbose {
			fmt.Fprintln(stderr, "numlint: analyzing", pi.path)
		}
		diags = append(diags, runAnalyzers(pi, modPath, inter)...)
	}

	if *writeBaselinePath != "" {
		if err := writeBaseline(*writeBaselinePath, modDir, diags); err != nil {
			fmt.Fprintln(stderr, "numlint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "numlint: wrote %d finding(s) to %s\n", len(diags), *writeBaselinePath)
		return 0
	}

	newFindings := diags
	var accepted []Diagnostic
	if *baselinePath != "" {
		b, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		newFindings, accepted = filterBaseline(b, modDir, diags)
	}

	if *jsonOut {
		if err := writeJSONReport(stdout, modDir, newFindings, accepted); err != nil {
			fmt.Fprintln(stderr, "numlint:", err)
			return 2
		}
	} else {
		for _, d := range newFindings {
			fmt.Fprintln(stdout, d)
		}
	}

	if *verbose || len(newFindings) > 0 {
		fmt.Fprintf(stderr, "numlint: %d new finding(s), %d baselined, %d package(s)\n",
			len(newFindings), len(accepted), len(paths))
	}
	if len(newFindings) > 0 {
		return 1
	}
	return 0
}
