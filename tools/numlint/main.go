// Command numlint is the repository's numeric-safety linter.
//
// It runs four custom analyzers tuned to the battery-lifetime pipeline
// over module-local packages:
//
//	floatcmp     ==/!= on floats outside exact-sentinel comparisons
//	naninf       unguarded division / Log / Sqrt of parameters in float kernels
//	errchecklite dropped error returns from module-local functions
//	unitsafety   raw numeric literals passed as internal/units quantities
//
// Usage:
//
//	go run ./tools/numlint ./...
//	go run ./tools/numlint -tags debugchecks ./internal/check
//
// Findings are suppressed with a trailing or preceding comment:
//
//	//numlint:ignore <analyzer> <reason>
//
// Exit status: 0 clean, 1 findings, 2 load or usage errors. See
// docs/DEVELOPING.md for the full contract.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

var analyzers = []*Analyzer{
	floatcmpAnalyzer,
	naninfAnalyzer,
	errcheckliteAnalyzer,
	unitsafetyAnalyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("numlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tags := fs.String("tags", "", "comma-separated extra build tags")
	verbose := fs.Bool("v", false, "log packages as they are analyzed")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: numlint [-tags tag,...] [-v] packages...")
		fmt.Fprintln(stderr, "analyzers:")
		for _, a := range analyzers {
			fmt.Fprintf(stderr, "  %-13s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "numlint:", err)
		return 2
	}
	modDir, modPath, err := findModule(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}
	l := newLoader(modDir, modPath, tagList)

	paths, err := l.expandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "numlint: no packages match", patterns)
		return 2
	}

	exit := 0
	total := 0
	for _, path := range paths {
		if *verbose {
			fmt.Fprintln(stderr, "numlint: analyzing", path)
		}
		pi, err := l.load(path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		diags := runAnalyzers(pi, modPath)
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		total += len(diags)
		if len(diags) > 0 {
			exit = 1
		}
	}
	if *verbose || exit != 0 {
		fmt.Fprintf(stderr, "numlint: %d finding(s) in %d package(s)\n", total, len(paths))
	}
	return exit
}
