// Findings baseline: CI fails only on findings not present in the
// checked-in baseline file, so the analyzer suite can be tightened (or
// a new analyzer landed) without requiring every historical finding to
// be fixed in the same change.
//
// A baseline entry matches on (analyzer, module-relative file, message)
// with an occurrence count — line numbers are deliberately excluded so
// unrelated edits to a file do not invalidate the baseline. The
// workflow:
//
//	go run ./tools/numlint -baseline .numlint-baseline.json ./...   # gate
//	go run ./tools/numlint -write-baseline .numlint-baseline.json ./...  # refresh
//
// Refreshing the baseline to swallow a fixable finding is a review
// smell; prefer a fix or a documented //numlint:ignore.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Baseline is the on-disk format of .numlint-baseline.json.
type Baseline struct {
	// Comment documents the file for humans; the tool ignores it.
	Comment string `json:"comment,omitempty"`
	// Findings are the accepted findings.
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry is one accepted finding class.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	// File is module-relative with forward slashes.
	File    string `json:"file"`
	Message string `json:"message"`
	// Count is how many identical findings are accepted; 0 means 1.
	Count int `json:"count,omitempty"`
}

func (e BaselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

func (e BaselineEntry) count() int {
	if e.Count <= 0 {
		return 1
	}
	return e.Count
}

// loadBaseline reads a baseline file; a missing file is an empty
// baseline so the flag can be wired into CI before the file exists.
func loadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("numlint: baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("numlint: baseline %s: %w", path, err)
	}
	return &b, nil
}

// relFile converts a diagnostic's absolute filename to the
// module-relative slash form used in baselines and JSON reports.
func relFile(modDir, filename string) string {
	if rel, err := filepath.Rel(modDir, filename); err == nil && !filepath.IsAbs(rel) {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// filterBaseline splits diagnostics into (new, accepted): each
// baseline entry absorbs up to count() matching findings.
func filterBaseline(b *Baseline, modDir string, diags []Diagnostic) (newFindings, accepted []Diagnostic) {
	budget := map[string]int{}
	for _, e := range b.Findings {
		budget[e.key()] += e.count()
	}
	for _, d := range diags {
		k := BaselineEntry{
			Analyzer: d.Analyzer,
			File:     relFile(modDir, d.Pos.Filename),
			Message:  d.Message,
		}.key()
		if budget[k] > 0 {
			budget[k]--
			accepted = append(accepted, d)
			continue
		}
		newFindings = append(newFindings, d)
	}
	return newFindings, accepted
}

// writeBaseline persists the current findings as the new baseline.
func writeBaseline(path, modDir string, diags []Diagnostic) error {
	counts := map[BaselineEntry]int{}
	for _, d := range diags {
		counts[BaselineEntry{
			Analyzer: d.Analyzer,
			File:     relFile(modDir, d.Pos.Filename),
			Message:  d.Message,
		}]++
	}
	b := Baseline{
		Comment:  "Accepted numlint findings. Matching ignores line numbers; see docs/STATIC_ANALYSIS.md for the refresh workflow.",
		Findings: []BaselineEntry{},
	}
	for e, n := range counts {
		if n > 1 {
			e.Count = n
		}
		b.Findings = append(b.Findings, e)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		if a.File != c.File {
			return a.File < c.File
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// jsonFinding is the machine-readable report row for -json mode.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	// Baselined marks findings absorbed by the baseline (reported for
	// visibility, but not gating).
	Baselined bool `json:"baselined,omitempty"`
}

func writeJSONReport(w *os.File, modDir string, newFindings, accepted []Diagnostic) error {
	rows := make([]jsonFinding, 0, len(newFindings)+len(accepted))
	add := func(d Diagnostic, baselined bool) {
		rows = append(rows, jsonFinding{
			Analyzer:  d.Analyzer,
			File:      relFile(modDir, d.Pos.Filename),
			Line:      d.Pos.Line,
			Column:    d.Pos.Column,
			Message:   d.Message,
			Baselined: baselined,
		})
	}
	for _, d := range newFindings {
		add(d, false)
	}
	for _, d := range accepted {
		add(d, true)
	}
	// Fully deterministic order (analyzer, file, line, message, column)
	// so reports diff cleanly across runs and CI artifacts are stable.
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Message != b.Message {
			return a.Message < b.Message
		}
		return a.Column < b.Column
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Findings []jsonFinding `json:"findings"`
	}{rows})
}
