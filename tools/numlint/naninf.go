package main

import (
	"go/ast"
	"go/types"
	"strings"

	"batlife/tools/numlint/internal/summary"
)

// contextEstablishes reports whether every visible call site already
// guarantees pred for obj (summary context facts) — interprocedurally
// guarded code that used to need a //numlint:ignore.
func contextEstablishes(pass *Pass, fd *ast.FuncDecl, obj types.Object, pred summary.Pred) bool {
	return pass.Inter != nil && pass.Inter.contextPreds(pass.Info, fd, obj).Has(pred)
}

// naninfAnalyzer flags float-returning functions that divide by a
// parameter, or take math.Log/Sqrt of a parameter-dependent expression,
// without any visible guard on that parameter.
//
// A silent NaN or Inf produced deep inside the uniformisation pipeline
// propagates through every downstream vector product without tripping
// any error path, so float kernels must either branch on the dangerous
// parameter (any if/for/switch condition mentioning it counts), state a
// precondition in their doc comment ("must be", "precondition",
// "positive", "non-negative", "nonzero", "non-empty"), or carry a
// //numlint:ignore naninf justification.
var naninfAnalyzer = &Analyzer{
	Name: "naninf",
	Doc:  "flag unguarded division by / Log / Sqrt of parameters in float-returning functions",
	Run:  runNanInf,
}

// preconditionMarkers are doc-comment phrases that count as a documented
// precondition exempting the whole function.
var preconditionMarkers = []string{
	"must be", "must not", "precondition", "positive", "non-negative",
	"nonnegative", "nonzero", "non-zero", "non-empty", "caller",
}

func runNanInf(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !returnsFloat(pass, fd) || docStatesPrecondition(fd.Doc) {
				continue
			}
			if pass.Inter != nil && pass.Inter.hasRequiresContract(pass.Info, fd) {
				continue // declared precondition: the contract analyzer owns it
			}
			params := floatParams(pass, fd)
			if len(params) == 0 {
				continue
			}
			guarded := guardedObjects(pass, fd.Body)
			checkBody(pass, fd, params, guarded)
		}
	}
}

// returnsFloat reports whether fd returns a float or a slice of floats.
func returnsFloat(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, res := range fd.Type.Results.List {
		t := pass.Info.Types[res.Type].Type
		if isFloat(t) {
			return true
		}
		if sl, ok := t.(*types.Slice); ok && isFloat(sl.Elem()) {
			return true
		}
	}
	return false
}

func docStatesPrecondition(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	text := strings.ToLower(doc.Text())
	for _, marker := range preconditionMarkers {
		if strings.Contains(text, marker) {
			return true
		}
	}
	return false
}

// floatParams returns the float-typed parameter objects of fd.
func floatParams(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	set := map[types.Object]bool{}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.Info.Defs[name]
			if obj != nil && isFloat(obj.Type()) {
				set[obj] = true
			}
		}
	}
	return set
}

// guardedObjects collects every object referenced from a branching
// condition inside body: if/for conditions, switch tags and case
// expressions. A parameter that appears in any of them is considered
// guarded — the function visibly branches on it.
func guardedObjects(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	guarded := map[types.Object]bool{}
	mark := func(e ast.Expr) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					guarded[obj] = true
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			mark(s.Cond)
		case *ast.ForStmt:
			mark(s.Cond)
		case *ast.SwitchStmt:
			mark(s.Tag)
		case *ast.CaseClause:
			for _, e := range s.List {
				mark(e)
			}
		}
		return true
	})
	return guarded
}

// checkBody reports unguarded divisions and Log/Sqrt applications.
func checkBody(pass *Pass, fd *ast.FuncDecl, params, guarded map[types.Object]bool) {
	unguardedParam := func(e ast.Expr) types.Object {
		var found types.Object
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj != nil && params[obj] && !guarded[obj] {
				found = obj
				return false
			}
			return true
		})
		return found
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			if e.Op.String() != "/" {
				return true
			}
			if tv := pass.Info.Types[e.Y]; tv.Value != nil {
				return true // constant denominator
			}
			if !isFloat(pass.Info.Types[e.X].Type) && !isFloat(pass.Info.Types[e.Y].Type) {
				return true
			}
			if obj := unguardedParam(e.Y); obj != nil && !contextEstablishes(pass, fd, obj, summary.NonZero) {
				pass.Reportf(e.OpPos,
					"possible NaN/Inf: %s divides by parameter %s without a guard or documented precondition",
					fd.Name.Name, obj.Name())
			}
		case *ast.CallExpr:
			need := summary.Positive
			switch {
			case isMathCall(pass.Info, e, "Log", "Log2", "Log10"):
			case isMathCall(pass.Info, e, "Sqrt"):
				need = summary.NonNegative
			default:
				return true
			}
			if len(e.Args) != 1 {
				return true
			}
			if tv := pass.Info.Types[e.Args[0]]; tv.Value != nil {
				return true
			}
			if obj := unguardedParam(e.Args[0]); obj != nil && !contextEstablishes(pass, fd, obj, need) {
				fn := calleeFunc(pass.Info, e)
				pass.Reportf(e.Pos(),
					"possible NaN/Inf: %s applies math.%s to parameter %s without a guard or documented precondition",
					fd.Name.Name, fn.Name(), obj.Name())
			}
		}
		return true
	})
}
