// Package sharedcapture is a numlint test fixture for the
// goroutine-capture and lock-balance analyzer; see numlint_test.go for
// the expected findings.
package sharedcapture

import (
	"sync"
	"sync/atomic"
)

// RacyCounter increments a captured counter with no lock in sight.
func RacyCounter(n int) int {
	var total int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total++ // want sharedcapture (line 19)
		}()
	}
	wg.Wait()
	return total
}

// LockedCounter holds the mutex across the increment; the write is
// dominated by the acquisition.
func LockedCounter(n int) int {
	var total int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// ShardedWrites indexes the shared slice with the per-iteration loop
// variable — the disjoint-shard worker idiom, not a race under go1.22
// loop semantics.
func ShardedWrites(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = i * i
		}()
	}
	wg.Wait()
	return out
}

// SharedIndex writes through an index variable that is itself shared
// across the goroutines, then bumps it unlocked.
func SharedIndex(n int) []int {
	out := make([]int, n)
	next := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[next] = 1 // want sharedcapture (line 72)
			next++        // want sharedcapture (line 73)
		}()
	}
	wg.Wait()
	return out
}

// LeakyLock can return with the mutex still held on the failure path.
func LeakyLock(mu *sync.Mutex, fail bool) int {
	mu.Lock()
	if fail {
		return 0 // want sharedcapture (line 84)
	}
	mu.Unlock()
	return 1
}

// DeferBalanced releases via defer on every path.
func DeferBalanced(mu *sync.Mutex, fail bool) int {
	mu.Lock()
	defer mu.Unlock()
	if fail {
		return 0
	}
	return 1
}

// DeferClosureBalanced unlocks inside a deferred closure, which also
// discharges the lock on every path.
func DeferClosureBalanced(mu *sync.Mutex) int {
	mu.Lock()
	defer func() { mu.Unlock() }()
	return 1
}

// chunkJob mirrors the persistent SpMV pool's task shape: a cursor the
// workers race on atomically, a per-chunk completion WaitGroup, and the
// output slice the claimed chunk indexes into.
type chunkJob struct {
	next    atomic.Int32
	pending sync.WaitGroup
	dst     []float64
}

// PersistentWorkers is the persistent worker-pool idiom the runtime
// uses: long-lived goroutines drain a captured task channel, claim
// chunks through the job's own atomic cursor into a literal-local
// index, and write only slice elements reached through the received job
// pointer. No captured variable is mutated, so nothing is flagged —
// channel receives and atomic claims are the synchronisation.
func PersistentWorkers(tasks chan *chunkJob, quit chan struct{}, workers int) {
	for w := 0; w < workers; w++ {
		go func() {
			for {
				select {
				case <-quit:
					return
				case j := <-tasks:
					for {
						c := int(j.next.Add(1)) - 1
						if c >= len(j.dst) {
							return
						}
						j.dst[c] = float64(c)
						j.pending.Done()
					}
				}
			}
		}()
	}
}
