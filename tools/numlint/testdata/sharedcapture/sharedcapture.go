// Package sharedcapture is a numlint test fixture for the
// goroutine-capture and lock-balance analyzer; see numlint_test.go for
// the expected findings.
package sharedcapture

import "sync"

// RacyCounter increments a captured counter with no lock in sight.
func RacyCounter(n int) int {
	var total int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total++ // want sharedcapture (line 16)
		}()
	}
	wg.Wait()
	return total
}

// LockedCounter holds the mutex across the increment; the write is
// dominated by the acquisition.
func LockedCounter(n int) int {
	var total int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// ShardedWrites indexes the shared slice with the per-iteration loop
// variable — the disjoint-shard worker idiom, not a race under go1.22
// loop semantics.
func ShardedWrites(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = i * i
		}()
	}
	wg.Wait()
	return out
}

// SharedIndex writes through an index variable that is itself shared
// across the goroutines, then bumps it unlocked.
func SharedIndex(n int) []int {
	out := make([]int, n)
	next := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[next] = 1 // want sharedcapture (line 69)
			next++        // want sharedcapture (line 70)
		}()
	}
	wg.Wait()
	return out
}

// LeakyLock can return with the mutex still held on the failure path.
func LeakyLock(mu *sync.Mutex, fail bool) int {
	mu.Lock()
	if fail {
		return 0 // want sharedcapture (line 81)
	}
	mu.Unlock()
	return 1
}

// DeferBalanced releases via defer on every path.
func DeferBalanced(mu *sync.Mutex, fail bool) int {
	mu.Lock()
	defer mu.Unlock()
	if fail {
		return 0
	}
	return 1
}

// DeferClosureBalanced unlocks inside a deferred closure, which also
// discharges the lock on every path.
func DeferClosureBalanced(mu *sync.Mutex) int {
	mu.Lock()
	defer func() { mu.Unlock() }()
	return 1
}
