// Package contract exercises the contract analyzer and the
// interprocedural summaries consumed by naninf and divguard: declared
// requires/ensures verification, assert-directive blessing, and
// call-site context suppression.
package contract

// assertPositive panics unless every value is strictly greater than zero.
//
//numlint:asserts positive(xs)
func assertPositive(xs ...float64) {
	for _, v := range xs {
		if !(v > 0) {
			panic("assertPositive")
		}
	}
}

// assertProbs panics when v sums to zero, standing in for a real
// distribution check.
//
//numlint:asserts normalized(v)
func assertProbs(v []float64) {
	s := 0.0
	for _, p := range v {
		s += p
	}
	if s == 0 {
		panic("assertProbs")
	}
}

// scale returns x scaled by 1/d.
//
//numlint:requires nonzero(d)
func scale(x, d float64) float64 { return x / d }

func goodScale(x float64) float64 {
	if x == 0 {
		return 0
	}
	return scale(1, x) // ok: the dominating guard discharges requires
}

func badScale(x float64) float64 {
	return scale(1, x) // want contract: x not provably nonzero
}

func ctxHelper(d float64) float64 { return 1 / d } // ok: every call site guards d

func ctxCaller(x float64) float64 {
	if x > 0 {
		return ctxHelper(x)
	}
	return 0
}

func leakHelper(d float64) float64 { return 2 / d } // want naninf: unguarded call site exists

func leakCaller(x float64) float64 {
	return leakHelper(x) // want divguard: inferred obligation unmet
}

func normalizeVec(v []float64) []float64 {
	s := 0.0
	for _, p := range v {
		s += p
	}
	if s == 0 {
		return v
	}
	for i := range v {
		v[i] /= s
	}
	return v
}

// distOK fills a vector and normalizes it before returning.
//
//numlint:ensures normalized
func distOK(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return normalizeVec(v) // ok: normalize-named callee establishes it
}

// distBad dirties the vector after blessing it.
//
//numlint:ensures normalized
func distBad(n int) []float64 {
	v := make([]float64, n)
	assertProbs(v)
	v[0] = 2
	return v // the write above revokes the blessing
}

// clampOK discharges its promise with the assert shim.
//
//numlint:ensures positive
func clampOK(x float64) float64 {
	y := x*x + 1
	assertPositive(y)
	return y
}

// clampBad promises what the body never establishes.
//
//numlint:ensures positive
func clampBad(x float64) float64 {
	return x - 1
}

// consume folds a distribution into a scalar.
//
//numlint:requires normalized(v)
func consume(v []float64) float64 {
	s := 0.0
	for _, p := range v {
		s += p
	}
	return s
}

func feedOK(n int) float64 {
	v := make([]float64, n)
	return consume(normalizeVec(v)) // ok: callee ensures normalized
}

func feedBad(n int) float64 {
	v := make([]float64, n)
	v[0] = 2
	return consume(v) // want contract: v not provably normalized
}

//numlint:requires positiv(x)
func typoContract(x float64) float64 { return x } // want contract: unknown predicate
