// Package floatcmp is a numlint test fixture; see numlint_test.go for
// the expected findings.
package floatcmp

import "math"

// Cmp exercises the floatcmp analyzer.
func Cmp(a, b float64) bool {
	if a == b { // want finding (line 9)
		return true
	}
	if a != 0 { // exact-zero sentinel: no finding
		return false
	}
	if a == math.Inf(1) || b == -math.Inf(1) { // Inf sentinels: no finding
		return true
	}
	if a != a { // NaN idiom: no finding
		return false
	}
	//numlint:ignore floatcmp fixture demonstrates suppression
	if a == 3.5 { // suppressed
		return true
	}
	return b != 1 // want finding (line 25)
}
