// Package divguard is a numlint test fixture for the path-sensitive
// division/Log/Sqrt guard analyzer; see numlint_test.go for the
// expected findings. Every dangerous parameter below appears in *some*
// branch condition, so the syntactic naninf pass stays quiet — the
// findings here are exactly the ones only dataflow can see.
package divguard

import "math"

// LateGuard branches on d, but only after the division has already
// happened: no guard dominates the use.
func LateGuard(x, d float64) float64 {
	r := x / d // want divguard (line 13)
	if d > 0 {
		r++
	}
	return r
}

// WrongBranch guards d on the path where the division does not run and
// divides on the path where d may be zero.
func WrongBranch(x, d float64) float64 {
	if d > 0 {
		return x
	}
	return x / d // want divguard (line 26)
}

// LogWrongSide takes the log exactly on the branch where x is negative.
func LogWrongSide(x float64) float64 {
	if x < 0 {
		return math.Log(x) // want divguard (line 32)
	}
	return 0
}

// Dominated is clean: the early return dominates the division.
func Dominated(x, d float64) float64 {
	if d <= 0 {
		return 0
	}
	return x / d
}

// ShortCircuit is clean: the && left operand guards the right one.
func ShortCircuit(x float64) float64 {
	if x > 0 && math.Log(x) > 1 {
		return 2
	}
	return 0
}

// LoopGuarded is clean: the guard on d survives the loop back edge
// because nothing in the loop assigns d.
func LoopGuarded(xs []float64, d float64) float64 {
	if d <= 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x / d
	}
	return s
}

// Documented is clean by contract: d must be positive.
func Documented(x, d float64) float64 {
	return x / d
}
