// Package errcheck is a numlint test fixture; see numlint_test.go for
// the expected findings.
package errcheck

import (
	"fmt"

	"batlife/internal/sparse"
)

// Drop exercises the errchecklite analyzer against module-local callees.
func Drop(m *sparse.CSR, dst, x []float64) {
	m.MulVec(dst, x)     // want finding (line 13)
	_ = m.MulVec(dst, x) // want finding (line 14)
	go m.MulVec(dst, x)  // want finding (line 15)
	b := sparse.NewBuilder(1, 1, 0)
	v, _ := b.Freeze() // want finding (line 17)
	_ = v
	if err := m.MulVec(dst, x); err != nil { // handled: no finding
		fmt.Println(err)
	}
	fmt.Println("stdlib errors are out of scope") // no finding
	//numlint:ignore errchecklite fixture demonstrates suppression
	m.VecMul(x, dst) // suppressed
}
