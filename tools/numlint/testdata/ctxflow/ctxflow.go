// Package ctxflow is a numlint test fixture for the
// context-propagation analyzer; see numlint_test.go for the expected
// findings.
package ctxflow

import "context"

// Options is the options-struct idiom: the context rides in a field.
type Options struct {
	Ctx context.Context
}

// solve is a module-local context-capable callee.
func solve(ctx context.Context, n int) int {
	if ctx != nil && ctx.Err() != nil {
		return 0
	}
	return n
}

// NilContext has a caller context in scope but threads nil instead,
// severing the cancellation chain.
func NilContext(ctx context.Context, n int) int {
	return solve(nil, n) // want ctxflow (line 24)
}

// Minted discards the caller's context for a fresh root one.
func Minted(ctx context.Context, n int) int {
	return solve(context.Background(), n) // want ctxflow (line 29)
}

// Threaded passes the caller's context along.
func Threaded(ctx context.Context, n int) int {
	return solve(ctx, n)
}

// ThreadedStruct receives the context inside an options struct and
// unpacks it for the callee.
func ThreadedStruct(o Options, n int) int {
	return solve(o.Ctx, n)
}

// NoContext has no context in scope, so calling with nil is the
// caller's explicit choice, not a dropped chain.
func NoContext(n int) int {
	return solve(nil, n)
}
