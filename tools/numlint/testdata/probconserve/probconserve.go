// Package probconserve is a numlint test fixture for the
// probability-conservation analyzer; see numlint_test.go for the
// expected findings.
package probconserve

import "batlife/internal/check"

// BuildUnguarded fills a vector and returns it with no conservation
// guard on any path.
func BuildUnguarded(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out // want probconserve (line 15)
}

// BuildChecked passes the vector through a conservation assert before
// returning it.
func BuildChecked(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1 / float64(n)
	}
	check.Probabilities("probconserve.BuildChecked", out)
	return out
}

// Renormalized is blessed by assignment through a normalize-named
// helper.
func Renormalized(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2
	}
	v = normalize(v)
	return v
}

// DirtiedAfterCheck re-writes the vector after its conservation check,
// revoking the blessing.
func DirtiedAfterCheck(n int) []float64 {
	out := make([]float64, n)
	check.NonNegative("probconserve.DirtiedAfterCheck", out)
	out[0] = 2
	return out // want probconserve (line 46)
}

// HalfGuarded only checks the vector on one branch; the meet at the
// return keeps it unblessed.
func HalfGuarded(n int, ok bool) []float64 {
	out := make([]float64, n)
	if ok {
		check.Probabilities("probconserve.HalfGuarded", out)
	}
	return out // want probconserve (line 56)
}

// BareReturn exercises named-result tracking through a bare return.
func BareReturn(n int) (out []float64) {
	out = make([]float64, n)
	return // want probconserve (line 62)
}

// Annotated returns a scratch buffer on purpose; the assertion names
// the caller as responsible.
func Annotated(n int) []float64 {
	out := make([]float64, n)
	out[0] = 3
	return out //numlint:normalized scratch buffer; the caller normalizes after accumulation
}

// PassThrough never writes the vector, so there is nothing to flag.
func PassThrough(v []float64) []float64 {
	return v
}

// normalize rescales v to unit mass in place and returns it.
//
//numlint:normalized this is the normalizer itself; the final loop establishes unit mass
func normalize(v []float64) []float64 {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if sum <= 0 {
		return v
	}
	for i := range v {
		v[i] /= sum
	}
	return v
}
