// Package hotalloc is a numlint test fixture for the hot-path
// allocation analyzer; see numlint_test.go for the expected findings.
package hotalloc

import "fmt"

// Sum is an annotated inner-loop kernel that stays allocation-free.
//
//numlint:hotpath
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Grow allocates twice inside an annotated kernel.
//
//numlint:hotpath
func Grow(xs []float64) []float64 {
	out := make([]float64, 0, len(xs)) // want hotalloc (line 22)
	for _, x := range xs {
		out = append(out, x) // want hotalloc (line 24)
	}
	return out
}

// Label formats on the hot path, boxing through fmt's interfaces.
//
//numlint:hotpath
func Label(n int) string {
	return fmt.Sprintf("state-%d", n) // want hotalloc (line 33)
}

// Concat builds a string on the hot path.
//
//numlint:hotpath
func Concat(a, b string) string {
	return a + b // want hotalloc (line 40)
}

// Cold is unannotated: allocations here are nobody's business.
func Cold(n int) []int {
	return make([]int, n)
}

// Dispatch is the persistent-pool dispatch idiom on the hot path:
// non-blocking channel announcements, slicing a caller-owned buffer,
// and an in-place kernel — no composite literals, no make/append, no
// goroutine spawn, so an annotated dispatcher stays clean.
//
//numlint:hotpath
func Dispatch(tasks chan int, dst []float64, chunks int) {
	for c := 0; c < chunks; c++ {
		select {
		case tasks <- c:
		default:
		}
	}
	half := dst[:len(dst)/2]
	for i := range half {
		half[i] = 0
	}
}
