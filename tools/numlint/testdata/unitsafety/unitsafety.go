// Package unitsafety is a numlint test fixture; see numlint_test.go for
// the expected findings.
package unitsafety

import "batlife/internal/units"

// Battery pairs a typed capacity with an untyped label.
type Battery struct {
	Capacity units.Charge
	Cells    int
}

// Drain consumes a typed current for a typed duration.
func Drain(i units.Current, d units.Duration) {}

// Idle is the named constant a call site should prefer to a raw literal.
const Idle units.Current = 0.008

// Use exercises the unitsafety analyzer.
func Use() {
	Drain(0.2, units.Hours(2))                // want finding for 0.2 (line 21)
	Drain(units.Milliamps(200), 3600)         // want finding for 3600 (line 22)
	Drain(Idle, units.Seconds(10))            // named constant: no finding
	Drain(units.Current(0.2), units.Hours(1)) // explicit conversion: no finding
	Drain(0, units.Hours(1))                  // literal zero: no finding
	_ = Battery{Capacity: 800, Cells: 2}      // want finding for 800 (line 26)
	_ = Battery{Capacity: units.MilliampHours(800), Cells: 2}
	//numlint:ignore unitsafety fixture demonstrates suppression
	_ = Battery{Capacity: 650}
}
