// Package naninf is a numlint test fixture; see numlint_test.go for the
// expected findings.
package naninf

import "math"

// Unguarded divides and logs parameters with no guard.
func Unguarded(x, d float64) float64 {
	return math.Log(x) + 1/d // want two findings (line 9)
}

// Guarded branches on both parameters first.
func Guarded(x, d float64) float64 {
	if x <= 0 || d == 0 {
		return 0
	}
	return math.Log(x) + 1/d
}

// Documented has a precondition; x and d must be positive.
func Documented(x, d float64) float64 {
	return math.Sqrt(x) / d
}

// NotFloatResult is out of scope: it does not return a float.
func NotFloatResult(d float64) int {
	return int(1 / d)
}

// ConstantDenominator divides by a constant only.
func ConstantDenominator(x float64) float64 {
	if x > 0 {
		return x
	}
	return x / 2
}
