package batlife

import (
	"fmt"
	"testing"
)

// BenchmarkObsOverhead measures what the telemetry layer costs on the
// solver's hot paths, by running the BenchmarkSolverCachedReuse query
// with telemetry disabled (nil registry) and enabled side by side:
//
//   - "warm": repeated identical query answered from the result memo —
//     the hottest path, where the enabled overhead is two pre-resolved
//     atomic counter increments. The acceptance bar is < 3% overhead
//     enabled and zero extra allocations disabled.
//   - "warm-model": cached expanded CTMC, fresh transient solve — where
//     the iteration counters and the ctmc.transient span amortise over
//     thousands of SpMVs.
//
// `make bench` records this benchmark's output as BENCH_obs.json.
func BenchmarkObsOverhead(b *testing.B) {
	battery := Battery{CapacityAs: 7200, AvailableFraction: 0.625, FlowRate: 4.5e-5}
	w, err := OnOffWorkload(1, 1, 0.96)
	if err != nil {
		b.Fatal(err)
	}
	times := []float64{10000, 15000, 20000}
	opts := AnalysisOptions{Delta: 50}

	modes := []struct {
		name string
		reg  *Telemetry
	}{
		{"disabled", nil},
		{"enabled", nil}, // registry created per sub-benchmark below
	}
	for _, mode := range modes {
		enabled := mode.name == "enabled"
		newSolver := func() *Solver {
			var reg *Telemetry
			if enabled {
				reg = NewTelemetry()
			}
			return NewSolver(SolverOptions{Telemetry: reg})
		}

		b.Run(fmt.Sprintf("warm/%s", mode.name), func(b *testing.B) {
			s := newSolver()
			if _, err := s.LifetimeDistribution(battery, w, times, opts); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.LifetimeDistribution(battery, w, times, opts); err != nil {
					b.Fatal(err)
				}
			}
		})

		b.Run(fmt.Sprintf("warm-model/%s", mode.name), func(b *testing.B) {
			s := newSolver()
			noMemo := opts
			noMemo.Progress = func(done, total int) {}
			if _, err := s.LifetimeDistribution(battery, w, times, noMemo); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.LifetimeDistribution(battery, w, times, noMemo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
