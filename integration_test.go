package batlife

// Cross-method integration tests: the Markovian approximation, the
// Monte-Carlo simulator and (where applicable) the exact transform are
// three independent implementations of the same quantity. These tests
// throw randomly generated workloads and batteries at all of them and
// require agreement within grid bias plus Monte-Carlo noise — the
// strongest correctness evidence the repository has.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"batlife/internal/core"
	"batlife/internal/kibam"
	"batlife/internal/mrm"
	"batlife/internal/sim"
	"batlife/internal/workload"

	ictmc "batlife/internal/ctmc"
)

// modelToWorkload rewraps a KiBaMRM's workload parts for the facade.
func modelToWorkload(m mrm.KiBaMRM) *workload.Model {
	return &workload.Model{Chain: m.Workload, Currents: m.Currents, Initial: m.Initial}
}

// randomModel builds a random 2-4 state workload on a random battery,
// scaled so lifetimes land around `scale` seconds.
func randomModel(rng *rand.Rand) mrm.KiBaMRM {
	n := 2 + rng.Intn(3)
	var b ictmc.Builder
	name := func(i int) string { return fmt.Sprintf("m%d", i) }
	// A ring guarantees irreducibility; chords add variety.
	for i := 0; i < n; i++ {
		b.Transition(name(i), name((i+1)%n), 0.05+0.4*rng.Float64())
		if rng.Float64() < 0.5 {
			j := rng.Intn(n)
			if j != i {
				b.Transition(name(i), name(j), 0.05+0.2*rng.Float64())
			}
		}
	}
	chain, err := b.Build()
	if err != nil {
		panic("random ring workload cannot fail: " + err.Error())
	}
	currents := make([]float64, n)
	currents[0] = 0.5 + rng.Float64() // at least one real draw
	for i := 1; i < n; i++ {
		if rng.Float64() < 0.7 {
			currents[i] = rng.Float64()
		}
	}
	c := 1.0
	k := 0.0
	if rng.Float64() < 0.5 {
		c = 0.4 + 0.5*rng.Float64()
		k = math.Pow(10, -5+2*rng.Float64()) // 1e-5 .. 1e-3
	}
	return mrm.KiBaMRM{
		Workload: chain,
		Currents: currents,
		Initial:  chain.PointDistribution(rng.Intn(n)),
		Battery:  kibam.Params{Capacity: 1800, C: c, K: k},
	}
}

func TestApproximationAgreesWithSimulationOnRandomModels(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-method sweep is slow")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		model := randomModel(rng)

		// Grid: 60 levels of the full capacity; snapping c to the 1/60
		// grid makes the step divide both wells.
		cSnapped := math.Round(model.Battery.C*60) / 60
		if cSnapped <= 0 || cSnapped > 1 {
			return true
		}
		model.Battery.C = cSnapped
		delta := model.Battery.Capacity / 60

		e, err := core.Build(model, delta, core.Options{})
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		// Compare the MEAN lifetime rather than pointwise CDF values:
		// at 60 grid levels the phase-type approximation visibly smears
		// the CDF (the paper's Figure 7 effect), but its mean is only
		// biased by O(Δ), a few percent here.
		mean, err := e.MeanLifetime()
		if err != nil {
			t.Logf("seed %d: mean: %v", seed, err)
			return false
		}
		ecdf, err := sim.Lifetimes(model, seed, sim.Options{Runs: 600})
		if err != nil {
			t.Logf("seed %d: sim: %v", seed, err)
			return false
		}
		simMean, err := ecdf.Mean()
		if err != nil {
			t.Logf("seed %d: sim mean: %v", seed, err)
			return false
		}
		// Grid bias scales with the level count of the available well
		// (c·C/Δ = 60·c levels): a few levels' worth of downward bias
		// plus Monte-Carlo noise.
		tol := 0.05 + 3*delta/(model.Battery.C*model.Battery.Capacity)
		if diff := math.Abs(mean - simMean); diff > tol*simMean {
			t.Logf("seed %d: approx mean %v vs sim mean %v (tol %v, battery %+v)",
				seed, mean, simMean, tol, model.Battery)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestExactAgreesWithApproximationOnRandomIdealModels(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-method sweep is slow")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		model := randomModel(rng)
		model.Battery = kibam.Params{Capacity: 1800, C: 1, K: 0}

		w := &Workload{model: modelToWorkload(model)}
		b := Battery{CapacityAs: 1800, AvailableFraction: 1}
		pi, err := model.Workload.SteadyState()
		if err != nil {
			return false
		}
		meanI := 0.0
		for i, p := range pi {
			meanI += p * model.Currents[i]
		}
		scale := model.Battery.Capacity / meanI
		times := []float64{scale * 0.6, scale, scale * 1.4}
		exact, err := ExactLifetimeCDF(b, w, times)
		if err != nil {
			t.Logf("seed %d: exact: %v", seed, err)
			return false
		}
		approx, err := LifetimeDistribution(b, w, 1800.0/300, times)
		if err != nil {
			t.Logf("seed %d: approx: %v", seed, err)
			return false
		}
		for k := range times {
			if diff := math.Abs(exact[k] - approx.EmptyProb[k]); diff > 0.05 {
				t.Logf("seed %d t=%v: exact %v vs approx %v", seed, times[k], exact[k], approx.EmptyProb[k])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
